"""Lowering verified kernel IR to C99.

One translation unit per specialization, containing:

* ``flux_point`` — the straight-line per-face flux function (the whole
  ``reconstruct -> riemann`` chain for one face), inlined by the C
  compiler into
* ``repro_jit_sweep`` — the strip sweep: for each face row, compute
  fluxes into one of two rolling row buffers (caller-provided scratch,
  no allocation), then difference against the previous row exactly as
  the NumPy path does (``d = f[j] - f[j-1]; d = -d; d = d / dx``);
* ``dt_point`` + ``repro_jit_dt`` — the fused per-cell
  convert+eigenvalue GetDT pass with a per-group NaN-propagating max
  reduction (group = one strip for the solo engine, one member for the
  batch engine).

Bit-identity ground rules baked in here:

* every SSA op lowers to exactly one C double operation; the build
  flags (:data:`CFLAGS`) disable floating-point contraction so the
  compiler cannot fuse a mirrored multiply+add into an FMA with
  different rounding;
* ``minimum``/``maximum`` lower to helpers with NumPy's loop semantics
  (``(a < b || isnan(a)) ? a : b``) — *not* C ``fmin``/``fmax``, which
  silently drop NaNs;
* ``sign`` returns ``+0.0`` for both zeros and propagates NaN, matching
  ``np.sign``;
* constants are emitted as C99 hex-float literals, so the compiled
  value is the exact Python double the NumPy path multiplies by;
* the max reduction runs left to right from the first element —
  ``max`` is order-independent for the reduction NumPy performs
  (``np.max`` over the strip), and NaNs poison it in any order.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List

from repro.jit.ir import BOOL, KernelIR, Op
from repro.jit.kernels import KernelSpec

__all__ = [
    "CFLAGS",
    "LOWERED_OPCODES",
    "generate_source",
    "sweep_access_map",
    "dt_access_map",
]

#: Compiler flags for the kernel shared objects.  ``-ffp-contract=off``
#: is load-bearing: without it the compiler may fuse a*b+c into an FMA
#: whose single rounding differs from NumPy's two.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_PRELUDE = """\
#include <math.h>

/* NumPy ufunc loop semantics, not C fmin/fmax (those drop NaNs). */
static inline double nmin(double a, double b) {
    return (a < b) || isnan(a) ? a : b;
}
static inline double nmax(double a, double b) {
    return (a > b) || isnan(a) ? a : b;
}
/* np.sign: +-1 for nonzero, +0.0 for both zeros, NaN propagates. */
static inline double nsign(double x) {
    return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : (x == 0.0 ? 0.0 : x));
}
"""

_BINOPS = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_CMPOPS = {"eq": "==", "lt": "<", "gt": ">", "ge": ">=", "le": "<="}


def _const_literal(value: float) -> str:
    if value != value:  # pragma: no cover - emitters never emit NaN consts
        raise ValueError("NaN constant in kernel IR")
    return f"{float(value).hex()} /* {value!r} */"


#: One C expression per opcode.  This table is the single source of
#: truth for what the backend can lower; the drift-guard test asserts
#: its key set stays in lockstep with :data:`repro.jit.ir.OPCODES` and
#: :data:`repro.analysis.deps.OPCODE_EFFECTS`.
_LOWERERS: Dict[str, Callable[[Op], str]] = {
    "const": lambda op: _const_literal(op.payload),
    "param": lambda op: str(op.payload),
    "neg": lambda op: f"-{op.args[0]}",
    "abs": lambda op: f"fabs({op.args[0]})",
    "sqrt": lambda op: f"sqrt({op.args[0]})",
    "sign": lambda op: f"nsign({op.args[0]})",
    "minimum": lambda op: f"nmin({op.args[0]}, {op.args[1]})",
    "maximum": lambda op: f"nmax({op.args[0]}, {op.args[1]})",
    "and_": lambda op: f"{op.args[0]} && {op.args[1]}",
    "select": lambda op: f"{op.args[0]} ? {op.args[1]} : {op.args[2]}",
}
for _name, _symbol in _BINOPS.items():
    _LOWERERS[_name] = (
        lambda op, s=_symbol: f"{op.args[0]} {s} {op.args[1]}"
    )
for _name, _symbol in _CMPOPS.items():
    _LOWERERS[_name] = (
        lambda op, s=_symbol: f"{op.args[0]} {s} {op.args[1]}"
    )
del _name, _symbol

#: The opcodes this backend can emit C for (drift-guard contract).
LOWERED_OPCODES = frozenset(_LOWERERS)


def _lower_op(op) -> str:
    """One SSA op as one C declaration."""
    ctype = "int" if op.dtype == BOOL else "double"
    lowerer = _LOWERERS.get(op.opcode)
    if lowerer is None:  # pragma: no cover - verify_kernel rejects these
        raise ValueError(f"cannot lower opcode {op.opcode!r}")
    return f"    const {ctype} {op.name} = {lowerer(op)};"


def _point_function(
    ir: KernelIR, fn_name: str, stores: Dict[str, str], tail_params: str
) -> List[str]:
    """The straight-line point function for one IR kernel.

    ``stores`` maps output labels to C lvalues; ``tail_params`` are the
    output-pointer parameters appended to the scalar inputs.
    """
    scalars = ", ".join(f"double {c_name}" for c_name, _ in ir.params)
    lines = [f"static void {fn_name}({scalars}, {tail_params})", "{"]
    for op in ir.ops:
        lines.append(_lower_op(op))
    for label, value in ir.outputs:
        lines.append(f"    {stores[label]} = {value};")
    lines.append("}")
    return lines


def sweep_access_map(spec: KernelSpec, flux_ir: KernelIR):
    """The machine-readable access map of the sweep kernel.

    Derived from the same geometry :func:`generate_source` emits — the
    face loop ``j in [0, cells]`` reading the ``2 * ghost_cells``
    padded stencil rows ``j + k``, writing output row ``j - 1`` for
    ``j >= 1``, with the two rolling flux-row buffers in strip-private
    scratch.  Rows are the unit (one row = ``cross * nfields``
    doubles), so the map is independent of the cross extent.
    """
    from repro.analysis import deps

    cells = deps.LinExpr.var("cells")
    j = deps.LinExpr.var("j")
    zero = deps.LinExpr.of(0)
    stencil = 2 * spec.ghost_cells
    accesses = [
        deps.Access(
            "padded", "read", j + k, "j", zero, cells + 1, scope="shared"
        )
        for k in range(stencil)
    ]
    # The rolling buffers: every iteration writes one of two scratch
    # rows and reads the other back for the difference.  The rotation
    # is not affine in j, but both rows stay inside [0, 2) and the
    # buffer is strip-private, which is all the prover needs.
    for row in range(2):
        accesses.append(
            deps.Access(
                "scratch",
                "write",
                deps.LinExpr.of(row),
                "j",
                zero,
                cells + 1,
                scope="strip",
            )
        )
        accesses.append(
            deps.Access(
                "scratch",
                "read",
                deps.LinExpr.of(row),
                "j",
                zero,
                cells + 1,
                scope="strip",
            )
        )
    accesses.append(
        deps.Access(
            "out",
            "write",
            j - 1,
            "j",
            deps.LinExpr.of(1),
            cells + 1,
            scope="shared",
        )
    )
    return deps.AccessMap(
        kernel=f"sweep_{spec.symbol()}",
        accesses=tuple(accesses),
        extents={
            "padded": cells + stencil,
            "out": cells,
            "scratch": deps.LinExpr.of(2),
        },
        opcodes=frozenset(op.opcode for op in flux_ir.ops),
        strip_bases={"padded": "start", "out": "start", "scratch": "zero"},
    )


def dt_access_map(spec: KernelSpec, dt_ir: KernelIR):
    """The access map of the fused convert+GetDT kernel.

    Groups are the unit: iteration ``g`` reads group ``g`` of ``u``,
    writes group ``g`` of ``prim`` and entry ``g`` of ``group_max`` —
    trivially injective, so the per-strip dt dispatch needs no further
    geometry.
    """
    from repro.analysis import deps

    groups = deps.LinExpr.var("groups")
    g = deps.LinExpr.var("g")
    zero = deps.LinExpr.of(0)
    accesses = (
        deps.Access("u", "read", g, "g", zero, groups, scope="shared"),
        deps.Access("prim", "write", g, "g", zero, groups, scope="shared"),
        deps.Access(
            "group_max", "write", g, "g", zero, groups, scope="shared"
        ),
    )
    return deps.AccessMap(
        kernel=f"dt_{spec.symbol()}",
        accesses=accesses,
        extents={"u": groups, "prim": groups, "group_max": groups},
        opcodes=frozenset(op.opcode for op in dt_ir.ops),
        strip_bases={"u": "start", "prim": "start", "group_max": "start"},
    )


def generate_source(
    spec: KernelSpec, flux_ir: KernelIR, dt_ir: KernelIR
) -> str:
    """The complete C translation unit for one specialization.

    The header embeds the kernels' access maps (JSON) so the cached
    ``.c`` alongside the shared object is self-describing: the affine
    footprint the dependence prover certifies travels with the code it
    certifies.
    """
    nfields = spec.nfields
    stencil = 2 * spec.ghost_cells
    access_maps = json.dumps(
        {
            "sweep": sweep_access_map(spec, flux_ir).to_dict(),
            "dt": dt_access_map(spec, dt_ir).to_dict(),
        },
        sort_keys=True,
    )
    lines: List[str] = [
        f"/* repro.jit specialization: {spec.label()} */",
        f"/* access-map: {access_maps} */",
        _PRELUDE,
    ]

    flux_stores = {f"flux{f}": f"flux[{f}]" for f in range(nfields)}
    lines += _point_function(
        flux_ir, "flux_point", flux_stores, "double* restrict flux"
    )

    # Strip sweep: faces j = 0..cells over padded rows (cells + 2 ng,
    # cross, F); out receives the cells difference rows.  Two rolling
    # flux-row buffers live in caller scratch (2 * cross * F doubles).
    face_args = ", ".join(
        f"padded[(((j + {k}) * cross) + i) * {nfields} + {f}]"
        for k in range(stencil)
        for f in range(nfields)
    )
    lines += [
        "",
        "void repro_jit_sweep(const double* restrict padded,",
        "                     double* restrict out,",
        "                     double* restrict scratch,",
        "                     long cells, long cross,",
        "                     double gamma, double dx)",
        "{",
        f"    double* fprev = scratch;",
        f"    double* fcur = scratch + cross * {nfields};",
        "    for (long j = 0; j <= cells; ++j) {",
        "        for (long i = 0; i < cross; ++i) {",
        f"            flux_point({face_args}, gamma, fcur + i * {nfields});",
        "        }",
        "        if (j > 0) {",
        f"            double* target = out + (j - 1) * cross * {nfields};",
        f"            for (long m = 0; m < cross * {nfields}; ++m) {{",
        "                double d = fcur[m] - fprev[m];",
        "                d = -d;",
        "                d = d / dx;",
        "                target[m] = d;",
        "            }",
        "        }",
        "        double* rotate = fprev; fprev = fcur; fcur = rotate;",
        "    }",
        "}",
    ]

    dt_stores = {f"prim{f}": f"prim[{f}]" for f in range(nfields)}
    dt_stores["ev"] = "*ev"
    lines.append("")
    lines += _point_function(
        dt_ir, "dt_point", dt_stores, "double* restrict prim, double* restrict ev"
    )

    spacing_params = ", ".join(f"double sp{axis}" for axis in range(spec.ndim))
    cell_args = ", ".join(
        f"ubase[c * {nfields} + {f}]" for f in range(nfields)
    )
    spacing_args = ", ".join(f"sp{axis}" for axis in range(spec.ndim))
    lines += [
        "",
        "void repro_jit_dt(const double* restrict u,",
        "                  double* restrict prim,",
        "                  double* restrict group_max,",
        "                  long groups, long cells_per_group,",
        f"                  double gamma, {spacing_params})",
        "{",
        "    for (long g = 0; g < groups; ++g) {",
        f"        const double* ubase = u + g * cells_per_group * {nfields};",
        f"        double* pbase = prim + g * cells_per_group * {nfields};",
        "        double m = 0.0;",
        "        for (long c = 0; c < cells_per_group; ++c) {",
        "            double ev;",
        f"            dt_point({cell_args}, gamma, {spacing_args},",
        f"                     pbase + c * {nfields}, &ev);",
        "            m = c == 0 ? ev : nmax(m, ev);",
        "        }",
        "        group_max[g] = m;",
        "    }",
        "}",
    ]
    return "\n".join(lines) + "\n"
