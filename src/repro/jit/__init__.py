"""``repro.jit`` — lazy-specializing native compilation of the hot kernels.

The paper credits SaC's with-loop folding for fusing the
``reconstruct -> riemann -> difference`` producer/consumer chains that
dominate every Euler step; pure NumPy cannot fuse them (ROADMAP item 1,
~82% of step time in ``riemann + difference`` at 400x400).  This package
is the compile layer that closes that gap without giving up the repo's
core contract: **bit-for-bit identity with the NumPy path**.

How it works
------------

* A *specialization* is the tuple ``(riemann, reconstruction, limiter,
  variables, dtype, ndim)`` — exactly the method menu the engine's
  NumPy path dispatches on (:data:`repro.euler.riemann.RIEMANN_SOLVERS`
  and friends).  :mod:`repro.jit.kernels` assembles, per
  specialization, a straight-line SSA kernel IR (:mod:`repro.jit.ir`)
  for the fused per-face flux computation and the fused per-cell
  convert+eigenvalue dt pass, using *emitter* functions that live next
  to the NumPy kernels they mirror (``emit_*`` in
  :mod:`repro.euler.riemann`, :mod:`repro.euler.reconstruction`,
  :mod:`repro.euler.state`, :mod:`repro.euler.eos`).
* Every emitted op mirrors one NumPy ufunc application — same operation,
  same order, no algebraic rewrites (``np.power(x, 2)`` becomes
  ``x * x`` because that is NumPy's own fast path; ``np.minimum``'s
  NaN propagation is reproduced with an explicit helper, not ``fmin``).
  The IR is checked by :func:`repro.analysis.jit_verify.verify_kernel`
  before any C is generated; diagnostics name the failing
  specialization.
* :mod:`repro.jit.codegen` lowers the verified IR to C99 and
  :mod:`repro.jit.compile` builds it with the system C compiler
  (``-O2 -fPIC -shared -ffp-contract=off`` — contraction off so the
  compiler cannot fuse a mirrored multiply+add into an FMA with
  different rounding), caches the shared object by source hash, and
  loads it through :mod:`ctypes`.  First use compiles; later engines —
  and later processes — reuse the cached ``.so``.
* :class:`repro.jit.backend.JitBackend` is the ``KernelBackend`` the
  :class:`~repro.euler.engine.StepEngine` dispatches through,
  strip-wise, so :mod:`repro.euler.tiling` still governs the working
  set.  Anything the compiled path does not support (characteristic
  projection with wide stencils, missing compiler, non-float64 state)
  falls back to the NumPy oracle per strip, counted and attributed.

Backend selection
-----------------

Resolution order (first match wins):

1. the explicit ``backend=`` argument to ``StepEngine``;
2. a :func:`backend_override` context (used by tests/benchmarks);
3. the ``REPRO_JIT`` environment variable — ``0``/``off``/``numpy``
   forces NumPy, ``1``/``on``/``jit`` requests the compiled path
   (still falling back per strip, counted, if compilation fails);
4. *auto*: use the compiled path when a C compiler is available.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError

__all__ = [
    "JIT_ENV",
    "THREADS_ENV",
    "available",
    "backend_override",
    "resolve_backend_name",
    "resolve_jit_threads",
    "create_backend",
]

#: Environment switch: "0"/"off"/"numpy" disables the compiled path,
#: "1"/"on"/"jit" requests it, unset means auto-detect.
JIT_ENV = "REPRO_JIT"

#: Worker-thread count for the proof-licensed threaded strip dispatch
#: (see :meth:`repro.jit.backend.JitBackend.sweep_tiled`).  Unset or 1
#: keeps the serial per-strip dispatch; >= 2 threads a sweep's strips
#: over a pool of GIL-releasing ctypes calls *iff* the dependence
#: prover licensed the plan.
THREADS_ENV = "REPRO_JIT_THREADS"

_NUMPY_WORDS = frozenset({"0", "off", "numpy", "false", "no"})
_JIT_WORDS = frozenset({"1", "on", "jit", "true", "yes"})

#: Module-level override installed by :func:`backend_override`.
_OVERRIDE: Optional[str] = None


def available() -> bool:
    """True when a C compiler is on PATH (the auto-mode gate)."""
    from repro.jit.compile import find_compiler

    return find_compiler() is not None


def _parse_env(raw: str) -> str:
    word = raw.strip().lower()
    if word in _NUMPY_WORDS:
        return "numpy"
    if word in _JIT_WORDS:
        return "jit"
    raise ConfigurationError(
        f"{JIT_ENV}={raw!r} is not a backend; use 0/off/numpy or 1/on/jit"
    )


def resolve_backend_name(explicit: Optional[str] = None) -> str:
    """Resolve the backend to use: ``"numpy"`` or ``"jit"``.

    Precedence: ``explicit`` argument > :func:`backend_override` >
    ``REPRO_JIT`` env > auto (jit iff a compiler is available).
    """
    for source, value in (
        ("backend=", explicit),
        ("backend_override()", _OVERRIDE),
    ):
        if value is None:
            continue
        name = str(value).strip().lower()
        if name == "auto":
            break
        if name not in ("numpy", "jit"):
            raise ConfigurationError(
                f"{source} got {value!r}; expected 'numpy', 'jit' or 'auto'"
            )
        return name
    raw = os.environ.get(JIT_ENV)
    if raw is not None:
        return _parse_env(raw)
    return "jit" if available() else "numpy"


def resolve_jit_threads(explicit: Optional[object] = None) -> int:
    """Worker-thread count for the threaded strip dispatch (>= 1).

    ``explicit`` wins over the ``REPRO_JIT_THREADS`` environment
    variable; unset means 1 (serial per-strip dispatch, the bitwise
    baseline the threaded path must reproduce exactly).
    """
    raw = explicit if explicit is not None else os.environ.get(THREADS_ENV)
    if raw is None:
        return 1
    try:
        count = int(str(raw).strip())
    except ValueError:
        raise ConfigurationError(
            f"{THREADS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(
            f"{THREADS_ENV} must be >= 1, got {count}"
        )
    return count


@contextmanager
def backend_override(name: Optional[str]) -> Iterator[None]:
    """Scoped backend selection: ``"numpy"``, ``"jit"``, ``"auto"`` or
    ``None`` (None removes any active override).

    Engines resolve their backend at construction, so the override must
    wrap engine/solver *creation*, not stepping.
    """
    global _OVERRIDE
    if name is not None and str(name).strip().lower() not in (
        "numpy",
        "jit",
        "auto",
    ):
        raise ConfigurationError(
            f"backend_override({name!r}); expected 'numpy', 'jit', 'auto' or None"
        )
    previous = _OVERRIDE
    _OVERRIDE = name if name is None else str(name).strip().lower()
    try:
        yield
    finally:
        _OVERRIDE = previous


def create_backend(config, ndim: int, explicit: Optional[str] = None):
    """The engine-side entry point: a :class:`~repro.jit.backend.JitBackend`
    for this config/rank, or ``None`` for the plain NumPy path."""
    if resolve_backend_name(explicit) == "numpy":
        return None
    from repro.jit.backend import JitBackend

    return JitBackend(config, ndim)
