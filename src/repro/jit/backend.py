"""The ``KernelBackend`` the StepEngine dispatches through.

A :class:`JitBackend` owns the compiled kernels for one engine's
specialization and serves two strip-level operations:

* :meth:`sweep` — the fused ``reconstruct -> riemann -> difference``
  pass over one padded strip, writing the flux-difference rows;
* :meth:`dt_strip` — the fused ``convert -> eigenvalue`` GetDT pass
  over one strip, writing the primitive conversion and per-group
  maxima.

Both return ``False`` when they cannot serve the call — unsupported
specialization, no compiler, unexpected dtype/layout — and the engine
runs its NumPy oracle for exactly that strip.  Every fallback is
counted by reason (:attr:`fallbacks`), so "silently slower" is at
least never "silently unexplained".  An IR verification failure is
*not* a fallback: it means an emitter produced malformed IR (a bug),
and the :class:`~repro.errors.AnalysisError` propagates with the
specialization named.

Compilation happens lazily on the first served call and is cached
across engines and processes (see :mod:`repro.jit.compile`); time spent
is booked to the engine's ``jit_sweep``/``jit_dt`` phase counters.

**Threaded strips.**  With ``REPRO_JIT_THREADS >= 2``, :meth:`sweep_tiled`
dispatches a whole tile plan's strips over a thread pool — the compiled
sweep is a pure C function called through :mod:`ctypes`, which releases
the GIL, so strips genuinely run in parallel.  Threading is licensed
*per plan* by the dependence prover (:mod:`repro.analysis.deps`): the
kernel's access map must prove every strip in bounds for the declared
ghost width and all strips' shared writes disjoint.  A failing or
unavailable proof serializes the plan with a counted reason
(:attr:`serialized`) — never silently — and the engine's ordinary
per-strip loop runs instead.  Because each strip writes a disjoint row
range of ``out`` and reads only its own padded window, the threaded
result is bit-for-bit the serial result; the bit-identity sweep in
``tests/euler/test_jit_threads.py`` enforces exactly that.
"""

from __future__ import annotations

import ctypes
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

import repro.jit as repro_jit
from repro.analysis.jit_verify import verify_kernel
from repro.jit import codegen
from repro.jit import compile as jit_compile
from repro.jit.kernels import build_dt_ir, build_flux_ir, spec_from_config

__all__ = ["JitBackend"]

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)


def _ptr(array: np.ndarray):
    return array.ctypes.data_as(_DOUBLE_P)


class JitBackend:
    """Compiled-kernel server for one ``(config, ndim)`` engine."""

    name = "jit"

    def __init__(self, config, ndim: int):
        self.config = config
        self.ndim = int(ndim)
        self.spec, self.unsupported_reason = spec_from_config(config, ndim)
        self.sweep_calls = 0
        self.dt_calls = 0
        #: Fallback reason -> count of strip calls the NumPy oracle served.
        self.fallbacks: Dict[str, int] = {}
        #: Worker threads for :meth:`sweep_tiled` (``REPRO_JIT_THREADS``).
        self.threads = repro_jit.resolve_jit_threads()
        #: Strips served by the threaded dispatcher.
        self.strips_threaded = 0
        #: Serialization reason -> count of strips that ran serially
        #: because the dependence proof failed or was unavailable.
        self.serialized: Dict[str, int] = {}
        self._kernel: Optional[jit_compile.CompiledKernel] = None
        self._compile_failure: Optional[str] = None
        self._flux_ir = None
        #: Strip-layout key -> StripProof; proofs depend only on the
        #: kernel's access map and the strip boundaries, so one proof
        #: per tile plan layout suffices.
        self._strip_proofs: Dict[Tuple[Tuple[int, int], ...], object] = {}
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- kernel acquisition ---------------------------------------------

    def _fallback(self, reason: str) -> bool:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        return False

    def _ensure_kernel(self) -> Optional[jit_compile.CompiledKernel]:
        if self._kernel is not None:
            return self._kernel
        if self.spec is None or self._compile_failure is not None:
            return None
        spec = self.spec
        label = spec.label()
        flux_ir = build_flux_ir(spec)
        dt_ir = build_dt_ir(spec)
        # Emitter bugs surface here, by specialization — see module doc.
        verify_kernel(flux_ir, label)
        verify_kernel(dt_ir, label)
        self._flux_ir = flux_ir
        source = codegen.generate_source(spec, flux_ir, dt_ir)
        try:
            self._kernel = jit_compile.load_kernel(source, spec.ndim)
        except jit_compile.CompileError as error:
            self._compile_failure = f"compile failed: {error}"
            return None
        return self._kernel

    def _unavailable_reason(self) -> str:
        if self.unsupported_reason is not None:
            return self.unsupported_reason
        if self._compile_failure is not None:
            return self._compile_failure
        return "kernel unavailable"  # pragma: no cover - defensive

    # -- strip operations -----------------------------------------------

    def sweep(self, engine, padded: np.ndarray, spacing: float, out: np.ndarray) -> bool:
        """Fused sweep over one padded strip into ``out``; False = use NumPy.

        ``padded`` is ``(cells + 2 ng, cross..., F)`` in sweep layout;
        ``out`` receives the ``cells`` flux-difference rows (any layout —
        a non-contiguous target goes through contiguous scratch and one
        exact ``copyto``).
        """
        kernel = self._ensure_kernel()
        if kernel is None:
            return self._fallback(self._unavailable_reason())
        nfields = self.spec.nfields
        cells = padded.shape[0] - 2 * self.spec.ghost_cells
        if padded.dtype != np.float64 or out.dtype != np.float64:
            return self._fallback("non-float64 state")
        if not padded.flags.c_contiguous:
            return self._fallback("non-contiguous padded strip")
        if (
            padded.shape[-1] != nfields
            or cells < 1
            or out.shape != (cells,) + padded.shape[1:]
        ):
            return self._fallback("unexpected strip geometry")
        cross = 1
        for extent in padded.shape[1:-1]:
            cross *= extent

        started = perf_counter()
        workspace = engine.workspace
        scratch = workspace.array("jit.flux_rows", (2, cross, nfields))
        target = (
            out
            if out.flags.c_contiguous
            else workspace.array("jit.sweep_out", (cells, cross, nfields))
        )
        kernel.sweep(
            _ptr(padded),
            _ptr(target),
            _ptr(scratch),
            cells,
            cross,
            float(self.config.gamma),
            float(spacing),
        )
        if target is not out:
            np.copyto(out, target.reshape(out.shape))
        engine.seconds["jit_sweep"] += perf_counter() - started
        self.sweep_calls += 1
        return True

    # -- threaded strip dispatch ----------------------------------------

    def _serialize(self, reason: str, strips: int) -> bool:
        """Count ``strips`` serialized strips under ``reason``; False."""
        self.serialized[reason] = self.serialized.get(reason, 0) + strips
        return False

    def _strip_proof(self, plan):
        """The (cached) dependence proof for this plan's strip layout.

        Proofs depend only on the kernel's access map, the ghost width,
        and the strip boundaries, so one verdict per layout suffices.  A
        prover *crash* is itself an unavailable proof (DEP004-shaped
        reason) — it must serialize the plan, never take the engine down.
        """
        key = tuple((tile.start, tile.stop) for tile in plan.tiles)
        proof = self._strip_proofs.get(key)
        if proof is None:
            from repro.analysis import deps

            try:
                amap = codegen.sweep_access_map(self.spec, self._flux_ir)
                proof = deps.prove_strips(
                    amap,
                    key,
                    self.spec.ghost_cells,
                    where=self.spec.label(),
                )
            except Exception as error:
                proof = deps.StripProof(
                    licensed=False, reason=f"DEP004: prover failed: {error}"
                )
            self._strip_proofs[key] = proof
        return proof

    def _workers(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-jit"
            )
        return self._pool

    def sweep_tiled(self, engine, padded, plan, spacing: float, out) -> bool:
        """Serve a whole tile plan's sweep over the thread pool; False = serial.

        Licensed *only* by a passing dependence proof over the plan's
        strip layout (DEP001/002/003 clean, proof available): each strip
        then writes a proven-disjoint row range of ``out`` from its own
        padded window through a GIL-releasing ctypes call, so the result
        is bit-for-bit the serial per-strip dispatch.  A failing or
        unavailable proof serializes with a per-strip counted reason in
        :attr:`serialized`; configurations the threaded path simply does
        not apply to (1 thread, single-strip plan, kernel unavailable,
        unexpected dtype/geometry) return False silently and take the
        ordinary serial path with its own accounting.
        """
        if self.threads < 2 or plan is None or len(plan.tiles) < 2:
            return False
        kernel = self._ensure_kernel()
        if kernel is None or self._flux_ir is None:
            return False
        ng = self.spec.ghost_cells
        nfields = self.spec.nfields
        cells = padded.shape[0] - 2 * ng
        if padded.dtype != np.float64 or out.dtype != np.float64:
            return False
        if not padded.flags.c_contiguous:
            return False
        if (
            padded.shape[-1] != nfields
            or cells != plan.n_cells
            or out.shape != (cells,) + padded.shape[1:]
        ):
            return False
        proof = self._strip_proof(plan)
        if not proof.licensed:
            reason = proof.reason or "DEP004: proof unavailable"
            return self._serialize(reason, len(plan.tiles))
        cross = 1
        for extent in padded.shape[1:-1]:
            cross *= extent

        started = perf_counter()
        workspace = engine.workspace
        target = (
            out
            if out.flags.c_contiguous
            else workspace.array("jit.sweep_out_full", (cells, cross, nfields))
        )
        # Workspace buffers are not thread-safe: allocate every strip's
        # flux scratch up front on this thread, under distinct keys.
        scratches = [
            workspace.array(f"jit.flux_rows.t{index}", (2, cross, nfields))
            for index in range(len(plan.tiles))
        ]
        gamma = float(self.config.gamma)
        dx = float(spacing)

        def run(index: int) -> None:
            tile = plan.tiles[index]
            kernel.sweep(
                _ptr(padded[tile.start : tile.stop + 2 * ng]),
                _ptr(target[tile.start : tile.stop]),
                _ptr(scratches[index]),
                tile.cells,
                cross,
                gamma,
                dx,
            )

        # list() drains the iterator so worker exceptions surface here.
        list(self._workers().map(run, range(len(plan.tiles))))
        if target is not out:
            np.copyto(out, target.reshape(out.shape))
        engine.seconds["jit_sweep"] += perf_counter() - started
        self.sweep_calls += len(plan.tiles)
        self.strips_threaded += len(plan.tiles)
        return True

    def dt_strip(
        self,
        engine,
        u_strip: np.ndarray,
        prim_strip: np.ndarray,
        maxima_out: np.ndarray,
    ) -> bool:
        """Fused convert+GetDT over one strip; False = use NumPy.

        Writes the primitive conversion into ``prim_strip`` (kept fresh
        for RK stage 1, exactly like the NumPy path) and one max per
        group into ``maxima_out`` — one group for a solo engine strip,
        one per member for a batch strip.
        """
        kernel = self._ensure_kernel()
        if kernel is None:
            return self._fallback(self._unavailable_reason())
        nfields = self.spec.nfields
        if (
            u_strip.dtype != np.float64
            or prim_strip.dtype != np.float64
            or maxima_out.dtype != np.float64
        ):
            return self._fallback("non-float64 state")
        if not (
            u_strip.flags.c_contiguous
            and prim_strip.flags.c_contiguous
            and maxima_out.flags.c_contiguous
        ):
            return self._fallback("non-contiguous dt strip")
        groups = maxima_out.shape[0] if maxima_out.ndim == 1 else 0
        cells = u_strip.size // nfields
        if (
            u_strip.shape != prim_strip.shape
            or u_strip.shape[-1] != nfields
            or groups < 1
            or cells % groups != 0
        ):
            return self._fallback("unexpected strip geometry")

        started = perf_counter()
        kernel.dt(
            _ptr(u_strip),
            _ptr(prim_strip),
            _ptr(maxima_out),
            groups,
            cells // groups,
            float(self.config.gamma),
            *(float(s) for s in engine.spacing),
        )
        engine.seconds["jit_dt"] += perf_counter() - started
        self.dt_calls += 1
        return True

    # -- observability ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-friendly counter snapshot (engine counters / step trace)."""
        snapshot: Dict[str, object] = {
            "spec": self.spec.label() if self.spec is not None else None,
            "compiled": self._kernel is not None,
            "sweep_calls": self.sweep_calls,
            "dt_calls": self.dt_calls,
            "fallbacks": dict(self.fallbacks),
            "threads": self.threads,
            "strips_threaded": self.strips_threaded,
            "serialized": dict(self.serialized),
        }
        snapshot.update(jit_compile.compile_stats())
        return snapshot
