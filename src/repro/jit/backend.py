"""The ``KernelBackend`` the StepEngine dispatches through.

A :class:`JitBackend` owns the compiled kernels for one engine's
specialization and serves two strip-level operations:

* :meth:`sweep` — the fused ``reconstruct -> riemann -> difference``
  pass over one padded strip, writing the flux-difference rows;
* :meth:`dt_strip` — the fused ``convert -> eigenvalue`` GetDT pass
  over one strip, writing the primitive conversion and per-group
  maxima.

Both return ``False`` when they cannot serve the call — unsupported
specialization, no compiler, unexpected dtype/layout — and the engine
runs its NumPy oracle for exactly that strip.  Every fallback is
counted by reason (:attr:`fallbacks`), so "silently slower" is at
least never "silently unexplained".  An IR verification failure is
*not* a fallback: it means an emitter produced malformed IR (a bug),
and the :class:`~repro.errors.AnalysisError` propagates with the
specialization named.

Compilation happens lazily on the first served call and is cached
across engines and processes (see :mod:`repro.jit.compile`); time spent
is booked to the engine's ``jit_sweep``/``jit_dt`` phase counters.
"""

from __future__ import annotations

import ctypes
from time import perf_counter
from typing import Dict, Optional

import numpy as np

from repro.analysis.jit_verify import verify_kernel
from repro.jit import codegen
from repro.jit import compile as jit_compile
from repro.jit.kernels import build_dt_ir, build_flux_ir, spec_from_config

__all__ = ["JitBackend"]

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)


def _ptr(array: np.ndarray):
    return array.ctypes.data_as(_DOUBLE_P)


class JitBackend:
    """Compiled-kernel server for one ``(config, ndim)`` engine."""

    name = "jit"

    def __init__(self, config, ndim: int):
        self.config = config
        self.ndim = int(ndim)
        self.spec, self.unsupported_reason = spec_from_config(config, ndim)
        self.sweep_calls = 0
        self.dt_calls = 0
        #: Fallback reason -> count of strip calls the NumPy oracle served.
        self.fallbacks: Dict[str, int] = {}
        self._kernel: Optional[jit_compile.CompiledKernel] = None
        self._compile_failure: Optional[str] = None

    # -- kernel acquisition ---------------------------------------------

    def _fallback(self, reason: str) -> bool:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        return False

    def _ensure_kernel(self) -> Optional[jit_compile.CompiledKernel]:
        if self._kernel is not None:
            return self._kernel
        if self.spec is None or self._compile_failure is not None:
            return None
        spec = self.spec
        label = spec.label()
        flux_ir = build_flux_ir(spec)
        dt_ir = build_dt_ir(spec)
        # Emitter bugs surface here, by specialization — see module doc.
        verify_kernel(flux_ir, label)
        verify_kernel(dt_ir, label)
        source = codegen.generate_source(spec, flux_ir, dt_ir)
        try:
            self._kernel = jit_compile.load_kernel(source, spec.ndim)
        except jit_compile.CompileError as error:
            self._compile_failure = f"compile failed: {error}"
            return None
        return self._kernel

    def _unavailable_reason(self) -> str:
        if self.unsupported_reason is not None:
            return self.unsupported_reason
        if self._compile_failure is not None:
            return self._compile_failure
        return "kernel unavailable"  # pragma: no cover - defensive

    # -- strip operations -----------------------------------------------

    def sweep(self, engine, padded: np.ndarray, spacing: float, out: np.ndarray) -> bool:
        """Fused sweep over one padded strip into ``out``; False = use NumPy.

        ``padded`` is ``(cells + 2 ng, cross..., F)`` in sweep layout;
        ``out`` receives the ``cells`` flux-difference rows (any layout —
        a non-contiguous target goes through contiguous scratch and one
        exact ``copyto``).
        """
        kernel = self._ensure_kernel()
        if kernel is None:
            return self._fallback(self._unavailable_reason())
        nfields = self.spec.nfields
        cells = padded.shape[0] - 2 * self.spec.ghost_cells
        if padded.dtype != np.float64 or out.dtype != np.float64:
            return self._fallback("non-float64 state")
        if not padded.flags.c_contiguous:
            return self._fallback("non-contiguous padded strip")
        if (
            padded.shape[-1] != nfields
            or cells < 1
            or out.shape != (cells,) + padded.shape[1:]
        ):
            return self._fallback("unexpected strip geometry")
        cross = 1
        for extent in padded.shape[1:-1]:
            cross *= extent

        started = perf_counter()
        workspace = engine.workspace
        scratch = workspace.array("jit.flux_rows", (2, cross, nfields))
        target = (
            out
            if out.flags.c_contiguous
            else workspace.array("jit.sweep_out", (cells, cross, nfields))
        )
        kernel.sweep(
            _ptr(padded),
            _ptr(target),
            _ptr(scratch),
            cells,
            cross,
            float(self.config.gamma),
            float(spacing),
        )
        if target is not out:
            np.copyto(out, target.reshape(out.shape))
        engine.seconds["jit_sweep"] += perf_counter() - started
        self.sweep_calls += 1
        return True

    def dt_strip(
        self,
        engine,
        u_strip: np.ndarray,
        prim_strip: np.ndarray,
        maxima_out: np.ndarray,
    ) -> bool:
        """Fused convert+GetDT over one strip; False = use NumPy.

        Writes the primitive conversion into ``prim_strip`` (kept fresh
        for RK stage 1, exactly like the NumPy path) and one max per
        group into ``maxima_out`` — one group for a solo engine strip,
        one per member for a batch strip.
        """
        kernel = self._ensure_kernel()
        if kernel is None:
            return self._fallback(self._unavailable_reason())
        nfields = self.spec.nfields
        if (
            u_strip.dtype != np.float64
            or prim_strip.dtype != np.float64
            or maxima_out.dtype != np.float64
        ):
            return self._fallback("non-float64 state")
        if not (
            u_strip.flags.c_contiguous
            and prim_strip.flags.c_contiguous
            and maxima_out.flags.c_contiguous
        ):
            return self._fallback("non-contiguous dt strip")
        groups = maxima_out.shape[0] if maxima_out.ndim == 1 else 0
        cells = u_strip.size // nfields
        if (
            u_strip.shape != prim_strip.shape
            or u_strip.shape[-1] != nfields
            or groups < 1
            or cells % groups != 0
        ):
            return self._fallback("unexpected strip geometry")

        started = perf_counter()
        kernel.dt(
            _ptr(u_strip),
            _ptr(prim_strip),
            _ptr(maxima_out),
            groups,
            cells // groups,
            float(self.config.gamma),
            *(float(s) for s in engine.spacing),
        )
        engine.seconds["jit_dt"] += perf_counter() - started
        self.dt_calls += 1
        return True

    # -- observability ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-friendly counter snapshot (engine counters / step trace)."""
        snapshot: Dict[str, object] = {
            "spec": self.spec.label() if self.spec is not None else None,
            "compiled": self._kernel is not None,
            "sweep_calls": self.sweep_calls,
            "dt_calls": self.dt_calls,
            "fallbacks": dict(self.fallbacks),
        }
        snapshot.update(jit_compile.compile_stats())
        return snapshot
