"""Kernel specializations and their IR assembly.

A :class:`KernelSpec` is the method tuple the engine's NumPy path
dispatches on — ``(riemann, reconstruction, limiter, variables, dtype,
ndim)``.  For a supported spec this module assembles two straight-line
SSA kernels from the emitter functions that live next to the NumPy
kernels they mirror:

* the **flux kernel** — the whole per-face ``reconstruct -> riemann``
  chain from one stencil of primitive cells to one numerical flux
  vector (the difference step is applied by the codegen sweep
  skeleton, see :mod:`repro.jit.codegen`);
* the **dt kernel** — the fused per-cell ``convert -> eigenvalue``
  GetDT integrand, including the primitive conversion the engine keeps
  fresh for the first Runge-Kutta stage.

Unsupported corners return a reason string instead of a spec and the
engine keeps the NumPy oracle for them:

* ``characteristic`` variables with a multi-cell stencil (the
  eigenvector projection is not lowered; with ``pc``'s one-cell
  stencil the projection is skipped by the NumPy path itself, so the
  spec normalises to the bit-identical ``primitive`` kernel);
* any dtype but float64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.euler import eos, state
from repro.euler.reconstruction import get_scheme, get_scheme_emitter
from repro.euler.riemann import get_riemann_emitter
from repro.jit.ir import IRBuilder, KernelIR

__all__ = [
    "KernelSpec",
    "spec_from_config",
    "build_flux_ir",
    "build_dt_ir",
]


@dataclass(frozen=True)
class KernelSpec:
    """One compiled specialization (the cache key modulo dtype/rank)."""

    riemann: str
    reconstruction: str
    limiter: str
    variables: str
    dtype: str
    ndim: int

    @property
    def nfields(self) -> int:
        return self.ndim + 2

    @property
    def ghost_cells(self) -> int:
        return get_scheme(self.reconstruction, self.limiter).ghost_cells

    def label(self) -> str:
        """Human-readable name used in diagnostics and obs counters."""
        return (
            f"{self.riemann}/{self.reconstruction}/{self.limiter}/"
            f"{self.variables}/{self.dtype}/{self.ndim}d"
        )

    def symbol(self) -> str:
        """A C-identifier-safe stem for the generated functions."""
        return (
            f"{self.riemann}_{self.reconstruction}_{self.limiter}_"
            f"{self.variables}_{self.ndim}d"
        )


def spec_from_config(config, ndim: int):
    """``(spec, None)`` for a supported config, else ``(None, reason)``.

    ``variables="characteristic"`` with a one-cell stencil normalises to
    ``primitive``: :func:`~repro.euler.reconstruction.characteristic.
    reconstruct_characteristic` skips the projection entirely for
    ``ghost_cells == 1`` (piecewise-constant is basis-independent), so
    the primitive kernel is bit-for-bit the NumPy characteristic path.
    """
    variables = config.variables
    scheme = get_scheme(config.reconstruction, config.limiter)
    if variables == "characteristic":
        if scheme.ghost_cells > 1:
            return None, (
                "characteristic projection is not lowered for "
                f"{config.reconstruction} (ghost_cells="
                f"{scheme.ghost_cells}); NumPy path retained"
            )
        variables = "primitive"
    spec = KernelSpec(
        riemann=config.riemann,
        reconstruction=config.reconstruction,
        limiter=config.limiter,
        variables=variables,
        dtype="float64",
        ndim=int(ndim),
    )
    return spec, None


def build_flux_ir(spec: KernelSpec) -> KernelIR:
    """Assemble the per-face flux kernel IR for ``spec``.

    Inputs are the ``2 * ghost_cells`` stencil cells of *primitive*
    fields (``c{k}_{f}``, ordered like
    :func:`~repro.euler.reconstruction.base.stencil_views`) plus
    ``gamma``; outputs are ``flux0..flux{F-1}``.  The emitters replay
    the exact ufunc sequence of the engine's
    ``reconstruct -> riemann`` chain for one face.
    """
    nfields = spec.nfields
    stencil = 2 * spec.ghost_cells
    b = IRBuilder(f"flux_{spec.symbol()}")
    cells = [
        [b.param(f"c{k}_{f}") for f in range(nfields)] for k in range(stencil)
    ]
    gamma = b.param("gamma")
    gm1 = b.sub(gamma, 1.0)

    scheme_emit = get_scheme_emitter(spec.reconstruction, spec.limiter)
    if spec.variables == "primitive":
        left, right = _reconstruct_fields(b, scheme_emit, cells, nfields)
    elif spec.variables == "conservative":
        # Mirror of the engine's conservative branch: convert the whole
        # padded stencil, reconstruct componentwise in conservative
        # space, convert the face states back.  The scalar conversion of
        # a stencil cell produces the same bits every time it is
        # recomputed, exactly like the array conversion of that cell.
        cons_cells = [
            state.emit_conservative_from_primitive(b, cell, gm1)
            for cell in cells
        ]
        cons_left, cons_right = _reconstruct_fields(
            b, scheme_emit, cons_cells, nfields
        )
        left = state.emit_primitive_from_conservative(b, cons_left, gm1)
        right = state.emit_primitive_from_conservative(b, cons_right, gm1)
    else:
        raise ValueError(
            f"unsupported variables mode {spec.variables!r} in {spec.label()}"
        )

    riemann_emit = get_riemann_emitter(spec.riemann)
    flux = riemann_emit(b, left, right, gamma, gm1)
    for field, value in enumerate(flux):
        b.output(f"flux{field}", value)
    return b.finish()


def _reconstruct_fields(b, scheme_emit, cells, nfields):
    """Componentwise reconstruction: each field's stencil through the
    scheme independently (fields are elementwise-independent in the
    NumPy path, so per-field order is irrelevant to bit identity)."""
    left = []
    right = []
    for field in range(nfields):
        stencil = [cell[field] for cell in cells]
        left_value, right_value = scheme_emit(b, stencil)
        left.append(left_value)
        right.append(right_value)
    return left, right


def build_dt_ir(spec: KernelSpec) -> KernelIR:
    """Assemble the fused per-cell convert+GetDT kernel IR for ``spec``.

    Inputs are the conservative fields ``u0..u{F-1}``, ``gamma`` and the
    spacings ``sp0``/``sp1``; outputs the primitive fields
    ``prim0..prim{F-1}`` (the engine keeps the converted strip fresh for
    RK stage 1) and the eigenvalue integrand ``ev`` — mirrors of
    :func:`repro.euler.state.primitive_from_conservative` and
    :func:`repro.euler.timestep.eigenvalues_into`.
    """
    nfields = spec.nfields
    b = IRBuilder(f"dt_{spec.symbol()}")
    u = [b.param(f"u{f}") for f in range(nfields)]
    gamma = b.param("gamma")
    spacings = [b.param(f"sp{axis}") for axis in range(spec.ndim)]
    gm1 = b.sub(gamma, 1.0)

    prim = state.emit_primitive_from_conservative(b, u, gm1)
    sound = eos.emit_sound_speed(b, prim[0], prim[-1], gamma)
    ev = b.const(0.0)
    for axis in range(spec.ndim):
        scratch = b.abs_(prim[1 + axis])
        scratch = b.add(scratch, sound)
        scratch = b.div(scratch, spacings[axis])
        ev = b.add(ev, scratch)

    for field, value in enumerate(prim):
        b.output(f"prim{field}", value)
    b.output("ev", ev)
    return b.finish()
