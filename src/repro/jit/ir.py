"""Straight-line SSA IR for the compiled kernels.

A kernel body is a list of :class:`Op` in SSA form: every op defines one
new value, consumes previously defined values (or float immediates,
which the builder materialises as ``const`` ops), and carries a dtype of
``"f64"`` or ``"bool"``.  There is deliberately no control flow — the
kernels this package compiles are the per-face flux function and the
per-cell dt function, both of which the NumPy path expresses as pure
elementwise ufunc chains; masks become ``select`` ops, mirroring
``np.copyto(..., where=)``.

The opcodes are exactly the ufuncs the NumPy kernels use.  Semantics
the C backend must honour (and :mod:`repro.analysis.jit_verify` checks
structurally):

``minimum``/``maximum``
    NumPy NaN-propagating semantics — ``(a < b || isnan(a)) ? a : b`` —
    **not** C ``fmin``/``fmax`` (which drop NaNs).
``sign``
    ``+1``/``-1`` for nonzero, ``0`` for zero, NaN propagates.
``select(cond, a, b)``
    ``cond ? a : b`` — the elementwise mirror of
    ``out[...] = b; np.copyto(out, a, where=cond)``.
``and_``
    logical AND of two bool values (mirrors ``np.logical_and`` /
    in-place ``&=`` on bool masks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

__all__ = ["Op", "KernelIR", "IRBuilder", "OPCODES", "F64", "BOOL"]

F64 = "f64"
BOOL = "bool"

#: opcode -> (arity, argument dtype, result dtype)
OPCODES: Dict[str, Tuple[int, str, str]] = {
    "const": (0, F64, F64),
    "param": (0, F64, F64),
    "add": (2, F64, F64),
    "sub": (2, F64, F64),
    "mul": (2, F64, F64),
    "div": (2, F64, F64),
    "neg": (1, F64, F64),
    "abs": (1, F64, F64),
    "sqrt": (1, F64, F64),
    "sign": (1, F64, F64),
    "minimum": (2, F64, F64),
    "maximum": (2, F64, F64),
    "eq": (2, F64, BOOL),
    "lt": (2, F64, BOOL),
    "gt": (2, F64, BOOL),
    "ge": (2, F64, BOOL),
    "le": (2, F64, BOOL),
    "and_": (2, BOOL, BOOL),
    # select is special-cased: (bool, f64, f64) -> f64
    "select": (3, F64, F64),
}

Value = str  # SSA value name, e.g. "v17"


@dataclass(frozen=True)
class Op:
    """One SSA definition: ``name = opcode(*args)``."""

    name: Value
    opcode: str
    args: Tuple[Value, ...] = ()
    #: payload for ``const`` (the float) / ``param`` (the C parameter name)
    payload: object = None
    dtype: str = F64


@dataclass
class KernelIR:
    """A verified-before-codegen straight-line kernel.

    ``params`` maps C-level input names to their SSA values; ``outputs``
    is the ordered list of SSA values the kernel stores, labelled so the
    codegen skeleton knows where each lands.
    """

    name: str
    ops: List[Op] = field(default_factory=list)
    params: List[Tuple[str, Value]] = field(default_factory=list)
    outputs: List[Tuple[str, Value]] = field(default_factory=list)

    def value_table(self) -> Dict[Value, Op]:
        return {op.name: op for op in self.ops}


class IRBuilder:
    """Builds :class:`KernelIR` one mirrored ufunc at a time.

    Arithmetic methods accept SSA value names or Python floats; floats
    are materialised as (deduplicated) ``const`` ops, mirroring NumPy
    scalar operands.
    """

    def __init__(self, name: str):
        self.ir = KernelIR(name)
        self._counter = 0
        self._consts: Dict[str, Value] = {}

    # -- plumbing --------------------------------------------------------

    def _fresh(self) -> Value:
        self._counter += 1
        return f"v{self._counter}"

    def _as_value(self, arg: Union[Value, float, int]) -> Value:
        if isinstance(arg, str):
            return arg
        return self.const(float(arg))

    def _emit(self, opcode: str, args: Sequence, dtype: str) -> Value:
        name = self._fresh()
        values = tuple(self._as_value(a) for a in args)
        self.ir.ops.append(Op(name, opcode, values, dtype=dtype))
        return name

    # -- inputs / outputs ------------------------------------------------

    def param(self, c_name: str) -> Value:
        """Declare a kernel input (a stencil cell field, gamma, ...)."""
        name = self._fresh()
        self.ir.ops.append(Op(name, "param", payload=c_name))
        self.ir.params.append((c_name, name))
        return name

    def const(self, value: float) -> Value:
        key = float(value).hex()
        found = self._consts.get(key)
        if found is not None:
            return found
        name = self._fresh()
        self.ir.ops.append(Op(name, "const", payload=float(value)))
        self._consts[key] = name
        return name

    def output(self, label: str, value: Value) -> None:
        self.ir.outputs.append((label, value))

    def finish(self) -> KernelIR:
        return self.ir

    # -- mirrored ufuncs -------------------------------------------------

    def add(self, a, b) -> Value:
        return self._emit("add", (a, b), F64)

    def sub(self, a, b) -> Value:
        return self._emit("sub", (a, b), F64)

    def mul(self, a, b) -> Value:
        return self._emit("mul", (a, b), F64)

    def div(self, a, b) -> Value:
        return self._emit("div", (a, b), F64)

    def neg(self, a) -> Value:
        return self._emit("neg", (a,), F64)

    def abs_(self, a) -> Value:
        return self._emit("abs", (a,), F64)

    def sqrt(self, a) -> Value:
        return self._emit("sqrt", (a,), F64)

    def sign(self, a) -> Value:
        return self._emit("sign", (a,), F64)

    def minimum(self, a, b) -> Value:
        return self._emit("minimum", (a, b), F64)

    def maximum(self, a, b) -> Value:
        return self._emit("maximum", (a, b), F64)

    def eq(self, a, b) -> Value:
        return self._emit("eq", (a, b), BOOL)

    def lt(self, a, b) -> Value:
        return self._emit("lt", (a, b), BOOL)

    def gt(self, a, b) -> Value:
        return self._emit("gt", (a, b), BOOL)

    def ge(self, a, b) -> Value:
        return self._emit("ge", (a, b), BOOL)

    def le(self, a, b) -> Value:
        return self._emit("le", (a, b), BOOL)

    def and_(self, a, b) -> Value:
        return self._emit("and_", (a, b), BOOL)

    def select(self, cond, a, b) -> Value:
        """``cond ? a : b`` — mirrors masked ``np.copyto``."""
        return self._emit("select", (cond, a, b), F64)
