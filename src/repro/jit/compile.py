"""Compiling and caching the generated kernels.

Pure-stdlib tooling: the generated C is built with whatever system C
compiler is on ``PATH`` (``cc``, ``gcc`` or ``clang``; override with
``REPRO_JIT_CC``) and loaded through :mod:`ctypes`.  Shared objects are
cached on disk keyed by the SHA-256 of the source — the source embeds
the full specialization (every constant as a hex float), so the hash
*is* the specialization key and survives across processes; a warm cache
turns "compile on first use" into a single ``dlopen``.

The cache directory is ``REPRO_JIT_CACHE`` or
``~/.cache/repro-jit``.  Failures (no compiler, cc errors, unwritable
cache) raise :class:`CompileError`; the backend catches it, counts the
reason, and keeps the NumPy oracle — compilation problems can never
change results, only speed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional

from repro.errors import ReproError
from repro.jit.codegen import CFLAGS

__all__ = [
    "CompileError",
    "CompiledKernel",
    "find_compiler",
    "cache_dir",
    "load_kernel",
    "compile_stats",
]

#: Environment overrides.
CC_ENV = "REPRO_JIT_CC"
CACHE_ENV = "REPRO_JIT_CACHE"

_CANDIDATE_COMPILERS = ("cc", "gcc", "clang")

#: Process-wide compile/cache counters (exposed via engine counters and
#: the step trace).
_STATS = {
    "compiles": 0,
    "compile_seconds": 0.0,
    "cache_hits": 0,
    "cache_misses": 0,
}

#: In-process kernel cache: source hash -> loaded CompiledKernel.
_LOADED: Dict[str, "CompiledKernel"] = {}


class CompileError(ReproError):
    """Kernel compilation or loading failed (NumPy fallback follows)."""


def find_compiler() -> Optional[str]:
    """Path of the C compiler to use, or None when none is available."""
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override)
    for name in _CANDIDATE_COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-jit"


def compile_stats() -> Dict[str, float]:
    """Snapshot of the process-wide compile/cache counters."""
    return dict(_STATS)


class CompiledKernel:
    """A loaded specialization: the sweep and dt entry points.

    ``sweep(padded, out, scratch, cells, cross, gamma, dx)`` and
    ``dt(u, prim, group_max, groups, cells_per_group, gamma, *spacing)``
    take C-contiguous float64 arrays; argument marshalling lives in
    :mod:`repro.jit.backend`.
    """

    def __init__(self, library: ctypes.CDLL, path: Path, ndim: int):
        self.path = path
        self._library = library
        double_p = ctypes.POINTER(ctypes.c_double)
        self.sweep = library.repro_jit_sweep
        self.sweep.restype = None
        self.sweep.argtypes = [
            double_p,
            double_p,
            double_p,
            ctypes.c_long,
            ctypes.c_long,
            ctypes.c_double,
            ctypes.c_double,
        ]
        self.dt = library.repro_jit_dt
        self.dt.restype = None
        self.dt.argtypes = [
            double_p,
            double_p,
            double_p,
            ctypes.c_long,
            ctypes.c_long,
            ctypes.c_double,
        ] + [ctypes.c_double] * ndim


def load_kernel(source: str, ndim: int) -> CompiledKernel:
    """Build (or reuse) the shared object for ``source`` and load it."""
    digest = hashlib.sha256(source.encode()).hexdigest()
    kernel = _LOADED.get(digest)
    if kernel is not None:
        _STATS["cache_hits"] += 1
        return kernel

    directory = cache_dir()
    shared_object = directory / f"{digest}.so"
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise CompileError(
            f"cannot create jit cache directory {directory}: {error}"
        ) from error

    if shared_object.exists():
        _STATS["cache_hits"] += 1
    else:
        _STATS["cache_misses"] += 1
        _build(source, digest, directory, shared_object)

    try:
        library = ctypes.CDLL(str(shared_object))
    except OSError as error:
        raise CompileError(
            f"cannot load compiled kernel {shared_object}: {error}"
        ) from error
    kernel = CompiledKernel(library, shared_object, ndim)
    _LOADED[digest] = kernel
    return kernel


def _build(
    source: str, digest: str, directory: Path, shared_object: Path
) -> None:
    compiler = find_compiler()
    if compiler is None:
        raise CompileError(
            "no C compiler found (looked for "
            f"{', '.join(_CANDIDATE_COMPILERS)}; set {CC_ENV} to override)"
        )
    started = perf_counter()
    source_path = directory / f"{digest}.c"
    fd, tmp_name = tempfile.mkstemp(
        suffix=".so", prefix=f".{digest}.", dir=str(directory)
    )
    os.close(fd)
    try:
        source_path.write_text(source)
        command = [compiler, *CFLAGS, "-o", tmp_name, str(source_path)]
        result = subprocess.run(
            command, capture_output=True, text=True, check=False
        )
        if result.returncode != 0:
            raise CompileError(
                f"{compiler} failed ({result.returncode}) for kernel "
                f"{digest[:12]}: {result.stderr.strip()[:500]}"
            )
        # Atomic publish so concurrent processes never load a torn .so.
        os.replace(tmp_name, shared_object)
    except OSError as error:
        raise CompileError(f"kernel build I/O failed: {error}") from error
    finally:
        if os.path.exists(tmp_name):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        _STATS["compiles"] += 1
        _STATS["compile_seconds"] += perf_counter() - started
