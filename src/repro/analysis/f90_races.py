"""Independent may-race analysis for Fortran DO loops.

:mod:`repro.f90.depend` decides which loops the auto-paralleliser may
distribute; this module re-decides the question with a *different*
algorithm — affine cross-iteration subscript analysis instead of
plain-subscript matching — and :func:`cross_check_autopar` compares
the two verdicts loop by loop:

* a loop autopar marked ``parallel`` that this checker finds racy is
  a hard error (``F90-RACE001``): the annotation would let the
  runtime execute a racy loop concurrently — a miscompile;
* a loop autopar serialised that this checker proves independent is
  reported as missed parallelism (``F90-RACE002``, warning) together
  with autopar's own reason — the paper's "the compiler can not
  always work out the data dependences in complete detail" made
  visible.

The race test per array pair (write/write or write/read): subscripts
are put in the affine form ``coef * loopvar + terms + const`` where
``terms`` are loop-invariant symbols.  Two accesses may touch the
same element in *different* iterations only if every dimension may be
equal under ``i1 != i2``; one protected dimension (same coefficient,
same terms, same constant, nonzero coefficient — or a constant offset
not divisible by the coefficient) proves disjointness.  Scalars must
be private (written before read, every iteration) or match a
reduction pattern; anything else is carried across iterations.  A
``CALL`` defeats the analysis, exactly as it defeats autopar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.diag import DiagnosticEngine
from repro.f90 import ast
from repro.f90.depend import INTRINSIC_NAMES
from repro.sac.source import Span

__all__ = ["Race", "find_races", "cross_check_autopar"]

SOURCE = "f90-races"

_REDUCTION_INTRINSICS = {"MAX", "MIN"}


@dataclass(frozen=True)
class Race:
    """One may-race found in a DO loop."""

    variable: str
    kind: str  # 'array' | 'scalar' | 'call'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind} {self.variable}: {self.detail}"


@dataclass
class _Access:
    name: str
    is_write: bool
    subscripts: Optional[List[ast.Section]]  # None = scalar access
    statement: ast.Stmt
    order: int


# --------------------------------------------------------------------------
# race detection
# --------------------------------------------------------------------------


def find_races(loop: ast.Do) -> List[Race]:
    """May-races between iterations of ``loop`` (empty = independent)."""
    accesses, inner_loop_vars, calls = _collect(loop.body)
    if calls:
        return [
            Race(name, "call", "CALL with unknown side effects inside the loop")
            for name in sorted(set(calls))
        ]
    races: List[Race] = []
    written_scalars = {
        a.name for a in accesses if a.is_write and a.subscripts is None
    }
    # Inner loop variables and written scalars change within one outer
    # iteration — subscripts through them are not loop-invariant.
    varying = written_scalars | set(inner_loop_vars) | {loop.var}
    races += _scalar_races(loop.var, accesses, inner_loop_vars)
    races += _array_races(loop.var, accesses, varying)
    return races


def _collect(
    statements: List[ast.Stmt],
) -> Tuple[List[_Access], List[str], List[str]]:
    accesses: List[_Access] = []
    inner_loop_vars: List[str] = []
    calls: List[str] = []
    counter = [0]

    def read_expr(expr: Optional[ast.Expr], statement: ast.Stmt) -> None:
        if expr is None:
            return
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Ref):
                if node.has_parens and node.name in INTRINSIC_NAMES:
                    continue
                counter[0] += 1
                accesses.append(
                    _Access(
                        node.name,
                        False,
                        node.subscripts if node.has_parens else None,
                        statement,
                        counter[0],
                    )
                )

    def visit(statements: List[ast.Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                read_expr(statement.expr, statement)
                for section in statement.target.subscripts:
                    for child in (section.index, section.lower, section.upper):
                        read_expr(child, statement)
                counter[0] += 1
                accesses.append(
                    _Access(
                        statement.target.name,
                        True,
                        statement.target.subscripts
                        if statement.target.has_parens
                        else None,
                        statement,
                        counter[0],
                    )
                )
            elif isinstance(statement, ast.If):
                read_expr(statement.condition, statement)
                visit(statement.then_body)
                for condition, block in statement.elif_blocks:
                    read_expr(condition, statement)
                    visit(block)
                visit(statement.else_body)
            elif isinstance(statement, ast.Do):
                inner_loop_vars.append(statement.var)
                read_expr(statement.lower, statement)
                read_expr(statement.upper, statement)
                read_expr(statement.step, statement)
                visit(statement.body)
            elif isinstance(statement, ast.DoWhile):
                read_expr(statement.condition, statement)
                visit(statement.body)
            elif isinstance(statement, ast.Call):
                calls.append(statement.name)
            elif isinstance(statement, ast.Print):
                for item in statement.items:
                    read_expr(item, statement)

    visit(statements)
    return accesses, inner_loop_vars, calls


def _scalar_races(
    var: str, accesses: List[_Access], inner_loop_vars: List[str]
) -> List[Race]:
    races: List[Race] = []
    scalar_names = {a.name for a in accesses if a.subscripts is None}
    scalar_names.discard(var)
    for name in sorted(scalar_names):
        if name in inner_loop_vars:
            continue  # each iteration re-initialises its inner loop counter
        touching = [a for a in accesses if a.name == name and a.subscripts is None]
        writes = [a for a in touching if a.is_write]
        if not writes:
            continue  # read-only shared scalar
        if _is_reduction(name, touching, writes):
            continue
        first = min(touching, key=lambda a: a.order)
        if (
            first.is_write
            and isinstance(first.statement, ast.Assign)
            and not _mentions(first.statement.expr, name)
        ):
            continue  # private: defined before use every iteration
        races.append(
            Race(
                name,
                "scalar",
                "written and read across iterations without a private "
                "definition or reduction pattern",
            )
        )
    return races


def _is_reduction(
    name: str, touching: List[_Access], writes: List[_Access]
) -> bool:
    operators = set()
    for write in writes:
        statement = write.statement
        if not isinstance(statement, ast.Assign):
            return False
        operator = _reduction_operator(statement)
        if operator is None:
            return False
        operators.add(operator)
    if len(operators) != 1:
        return False
    write_statements = {id(w.statement) for w in writes}
    reads_elsewhere = [
        a
        for a in touching
        if not a.is_write and id(a.statement) not in write_statements
    ]
    return not reads_elsewhere


def _reduction_operator(statement: ast.Assign) -> Optional[str]:
    name = statement.target.name
    expr = statement.expr
    if (
        isinstance(expr, ast.Ref)
        and expr.has_parens
        and expr.name in _REDUCTION_INTRINSICS
    ):
        operands = [s.index for s in expr.subscripts]
        if any(_is_plain(operand, name) for operand in operands):
            return expr.name
        return None
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "*"):
        if _is_plain(expr.left, name) or _is_plain(expr.right, name):
            return expr.op
    return None


def _array_races(
    var: str, accesses: List[_Access], varying_scalars: set
) -> List[Race]:
    """Write/write and write/read conflicts between iterations."""
    races: List[Race] = []
    array_names = {a.name for a in accesses if a.subscripts is not None}
    for name in sorted(array_names):
        touching = [
            a for a in accesses if a.name == name and a.subscripts is not None
        ]
        writes = [a for a in touching if a.is_write]
        if not writes:
            continue
        conflict = None
        for write in writes:
            # every access (the write itself included — a write/write
            # self-conflict means two iterations hit the same element)
            for other in touching:
                if _may_conflict(
                    var, write.subscripts, other.subscripts, varying_scalars
                ):
                    role = "write" if other.is_write else "read"
                    conflict = (
                        f"a {role} may hit an element written in a "
                        "different iteration"
                    )
                    break
            if conflict:
                break
        if conflict:
            races.append(Race(name, "array", conflict))
    return races


def _may_conflict(
    var: str,
    write_subscripts: Optional[List[ast.Section]],
    other_subscripts: Optional[List[ast.Section]],
    varying_scalars: set,
) -> bool:
    """Can the two accesses touch the same element with ``i1 != i2``?"""
    if write_subscripts is None or other_subscripts is None:
        return True
    if len(write_subscripts) != len(other_subscripts):
        return True  # rank mismatch — stay conservative
    for one, two in zip(write_subscripts, other_subscripts):
        if not _dim_may_equal_across_iterations(var, one, two, varying_scalars):
            return False  # this dimension proves disjointness
    return True


def _dim_may_equal_across_iterations(
    var: str,
    one: ast.Section,
    two: ast.Section,
    varying_scalars: set,
) -> bool:
    if one.is_range or two.is_range:
        return True
    first = _affine(one.index, var, varying_scalars)
    second = _affine(two.index, var, varying_scalars)
    if first is None or second is None:
        return True
    coef1, terms1, const1 = first
    coef2, terms2, const2 = second
    if terms1 != terms2:
        return True  # different invariant symbols — can't compare
    if coef1 != coef2:
        # e.g. A(i) vs A(2*i): equal whenever (coef1-coef2) divides
        # the constant gap — almost always satisfiable somewhere
        return True
    if coef1 == 0:
        # iteration-invariant on both sides: the same element every
        # iteration iff the constants agree
        return const1 == const2
    # same nonzero coefficient: i1 - i2 == (const2 - const1) / coef
    delta = const2 - const1
    return delta != 0 and delta % coef1 == 0


#: affine form: (coefficient of the loop var, invariant term key, constant)
_Affine = Tuple[int, Tuple[Tuple[str, int], ...], int]


def _affine(
    expr: Optional[ast.Expr], var: str, varying_scalars: set
) -> Optional[_Affine]:
    if expr is None:
        return None
    if isinstance(expr, ast.IntLit):
        return 0, (), expr.value
    if isinstance(expr, ast.Ref) and not expr.has_parens:
        if expr.name == var:
            return 1, (), 0
        if expr.name in varying_scalars:
            return None  # value changes between iterations
        return 0, ((expr.name, 1),), 0
    if isinstance(expr, ast.UnOp):
        if expr.op == "+":
            return _affine(expr.operand, var, varying_scalars)
        if expr.op == "-":
            inner = _affine(expr.operand, var, varying_scalars)
            if inner is None:
                return None
            coef, terms, const = inner
            return -coef, _negate_terms(terms), -const
        return None
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        left = _affine(expr.left, var, varying_scalars)
        right = _affine(expr.right, var, varying_scalars)
        if left is None or right is None:
            return None
        if expr.op == "-":
            right = (-right[0], _negate_terms(right[1]), -right[2])
        return (
            left[0] + right[0],
            _merge_terms(left[1], right[1]),
            left[2] + right[2],
        )
    if isinstance(expr, ast.BinOp) and expr.op == "*":
        left = _affine(expr.left, var, varying_scalars)
        right = _affine(expr.right, var, varying_scalars)
        if left is None or right is None:
            return None
        for scalar, other in ((left, right), (right, left)):
            if scalar[0] == 0 and not scalar[1]:  # pure integer constant
                factor = scalar[2]
                return (
                    factor * other[0],
                    tuple((n, factor * c) for n, c in other[1]),
                    factor * other[2],
                )
        return None
    return None


def _negate_terms(
    terms: Tuple[Tuple[str, int], ...]
) -> Tuple[Tuple[str, int], ...]:
    return tuple((name, -coefficient) for name, coefficient in terms)


def _merge_terms(
    left: Tuple[Tuple[str, int], ...], right: Tuple[Tuple[str, int], ...]
) -> Tuple[Tuple[str, int], ...]:
    merged: Dict[str, int] = {}
    for name, coefficient in left + right:
        merged[name] = merged.get(name, 0) + coefficient
    return tuple(sorted((n, c) for n, c in merged.items() if c != 0))


def _is_plain(expr: Optional[ast.Expr], name: str) -> bool:
    return isinstance(expr, ast.Ref) and expr.name == name and not expr.has_parens


def _mentions(expr: Optional[ast.Expr], name: str) -> bool:
    if expr is None:
        return False
    return any(
        isinstance(node, ast.Ref) and node.name == name and not node.has_parens
        for node in ast.walk_expr(expr)
    )


# --------------------------------------------------------------------------
# cross-check against autopar
# --------------------------------------------------------------------------


def cross_check_autopar(
    unit: ast.ProgramUnit,
    *,
    engine: Optional[DiagnosticEngine] = None,
) -> DiagnosticEngine:
    """Compare this checker's verdicts with autopar's annotations.

    ``unit`` must already be annotated by
    :func:`repro.f90.autopar.autoparallelize`.  Loop labels match the
    :class:`~repro.f90.autopar.AutoparReport` format
    (``SUBROUTINE:var@line``).
    """
    engine = engine if engine is not None else DiagnosticEngine()
    for subroutine in unit.subroutines.values():
        for statement in ast.walk_stmts(subroutine.body):
            if isinstance(statement, ast.Do):
                _check_loop(statement, subroutine.name, engine)
    return engine


def _check_loop(loop: ast.Do, where: str, engine: DiagnosticEngine) -> None:
    label = f"{where}:{loop.var}@{loop.line}"
    races = find_races(loop)
    span = Span(loop.line, 0)
    if loop.parallel and races:
        engine.error(
            "F90-RACE001",
            f"autopar marked loop {label} parallel but it may race",
            source=SOURCE,
            where=label,
            span=span,
            notes=tuple(str(race) for race in races),
        )
    elif not loop.parallel and not races:
        reason = loop.serial_reason or "no reason recorded"
        if reason == "auto-parallelisation disabled":
            return  # the whole pass was off; not a dependence disagreement
        engine.warning(
            "F90-RACE002",
            f"loop {label} is provably independent but autopar "
            "serialised it",
            source=SOURCE,
            where=label,
            span=span,
            notes=(f"autopar's reason: {reason}",),
        )
