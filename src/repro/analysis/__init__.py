"""Static-analysis framework shared by both mini-compilers.

The paper's central claim — SaC may parallelise *every* with-loop
because the language guarantees side-effect freedom, while Fortran's
auto-paralleliser must prove independence loop by loop — is exactly
the kind of claim a compiler bug silently invalidates.  This package
machine-checks it:

:mod:`diag`
    One :class:`Diagnostic`/:class:`DiagnosticEngine` vocabulary for
    every checker (severity, stable codes like ``SAC-IR001`` /
    ``F90-RACE002``, source spans, notes, JSON form shared with
    :mod:`repro.obs.export`).
:mod:`sac_verify`
    IR verifier for SaC modules — use-before-def, binder hygiene,
    type/shape consistency, malformed with-loop partitions and
    memory-reuse alias safety.  Runs standalone or between every
    optimisation pass (``verify_ir=True``), so a pass bug is reported
    with the *pass* that introduced it.
:mod:`wl_check`
    With-loop write-disjointness and index-bounds checking — the
    static justification for "every with-loop is parallel".
:mod:`f90_races`
    An independent may-race analysis over Fortran DO loops,
    cross-checked against :mod:`repro.f90.autopar`'s annotations.
:mod:`cli`
    ``python -m repro.lint`` — all checkers over a file or the
    built-in Euler kernels, text or JSONL output.
"""

from repro.analysis.diag import Diagnostic, DiagnosticEngine, Severity
from repro.analysis.sac_verify import verify_module
from repro.analysis.wl_check import check_with_loops
from repro.analysis.f90_races import Race, cross_check_autopar, find_races

__all__ = [
    "Diagnostic",
    "DiagnosticEngine",
    "Severity",
    "verify_module",
    "check_with_loops",
    "Race",
    "cross_check_autopar",
    "find_races",
]
