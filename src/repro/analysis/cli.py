"""``python -m repro.lint`` — run every static checker in one pass.

With no arguments the built-in programs are linted: the three bundled
SaC sources (the Section 4 Euler kernels among them, with the paper's
``-DDIM=2`` define set) and the two Fortran solver sources.  Paths to
``.sac`` / ``.f90`` files may be given instead.

Per SaC target: parse, IR-verify + typecheck the source module
(:mod:`repro.analysis.sac_verify`), check with-loop disjointness and
bounds (:mod:`repro.analysis.wl_check`), then compile at ``-O3`` with
``verify_ir=True`` so the verifier also runs between every
optimisation pass.  Per Fortran target: parse, auto-parallelise, and
cross-check the annotations against the independent race checker
(:mod:`repro.analysis.f90_races`).

``--jit`` lints the *compiled-kernel matrix* instead of (or besides)
source files: every registered riemann × reconstruction × limiter ×
variables × ndim specialization is lowered to kernel IR, verified
(:mod:`repro.analysis.jit_verify`), and its access map run through the
dependence prover (:mod:`repro.analysis.deps` — footprint vs. ghost
width, strip write-disjointness) ahead of time, so a specialization
that could not be compiled or threaded is caught in CI rather than at
first engine use.

Output is a human-readable report, or JSONL (``--json``, one
``"kind": "diagnostic"`` object per line — the
:mod:`repro.obs.export` schema) to stdout or ``--output``.  Exit
status is the number of error-severity findings, capped at 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diag import DiagnosticEngine
from repro.analysis.f90_races import cross_check_autopar
from repro.analysis.sac_verify import verify_module
from repro.analysis.wl_check import check_with_loops
from repro.errors import AnalysisError, ReproError

__all__ = [
    "main",
    "lint_sac_source",
    "lint_f90_source",
    "lint_jit_kernels",
    "builtin_targets",
]

#: defines for the bundled kernels, per tests and the paper's flags
_KERNELS_DEFINES: Dict[str, object] = {
    "DIM": 2,
    "DELTA": np.array([1.0, 1.0]),
    "CFL": 0.5,
}


def builtin_targets() -> List[Tuple[str, str, Dict[str, object]]]:
    """(name, kind, defines) for every bundled program."""
    return [
        ("kernels.sac", "sac", dict(_KERNELS_DEFINES)),
        ("euler1d.sac", "sac", {}),
        ("euler2d.sac", "sac", {}),
        ("euler2d.f90", "f90", {}),
        ("getdt.f90", "f90", {}),
    ]


def lint_sac_source(
    source: str,
    defines: Optional[Dict[str, object]] = None,
    *,
    engine: Optional[DiagnosticEngine] = None,
    pipeline: bool = True,
) -> DiagnosticEngine:
    """All SaC checkers over one source text."""
    from repro.sac import api
    from repro.sac.parser import parse_module

    engine = engine if engine is not None else DiagnosticEngine()
    module = parse_module(source)
    verify_module(module, defines, engine=engine)
    check_with_loops(module, defines, engine=engine)
    if pipeline and not engine.has_errors():
        options = api.CompilerOptions(defines=dict(defines or {}), verify_ir=True)
        try:
            api.compile_source(source, options)
        except AnalysisError as error:
            engine.extend(error.diagnostics)
    return engine


def lint_f90_source(
    source: str,
    *,
    engine: Optional[DiagnosticEngine] = None,
) -> DiagnosticEngine:
    """Autopar cross-check over one Fortran source text."""
    from repro.f90.autopar import autoparallelize
    from repro.f90.parser import parse_program

    engine = engine if engine is not None else DiagnosticEngine()
    unit = parse_program(source)
    autoparallelize(unit)
    cross_check_autopar(unit, engine=engine)
    return engine


def lint_jit_kernels(
    engine: Optional[DiagnosticEngine] = None,
) -> Tuple[int, List[Tuple[str, str]]]:
    """Lower + verify + dependence-prove the whole KernelSpec matrix.

    Every registered riemann × reconstruction × limiter × variables ×
    ndim combination is resolved to a :class:`~repro.jit.kernels
    .KernelSpec` (deduplicated — e.g. limiter choices collapse for
    unlimited schemes), its flux/dt IR built and structurally verified,
    and its access maps run through :func:`repro.analysis.deps
    .prove_strips` (sweep, against a representative two-strip plan and
    the declared ghost width) and :func:`~repro.analysis.deps
    .prove_footprint` (dt).  Findings land in ``engine``; returns
    ``(verified_spec_count, [(label, reason), ...])`` for the
    combinations the compiled path does not support (NumPy-only, by
    design — reported, not an error).
    """
    import itertools

    from repro.analysis import deps
    from repro.analysis.jit_verify import verify_kernel
    from repro.euler.reconstruction import LIMITERS
    from repro.euler.riemann import RIEMANN_SOLVERS
    from repro.euler.solver import SolverConfig
    from repro.jit import codegen
    from repro.jit.kernels import build_dt_ir, build_flux_ir, spec_from_config

    engine = engine if engine is not None else DiagnosticEngine()
    reconstructions = ("pc", "tvd2", "tvd3", "weno3")
    variables = ("primitive", "conservative", "characteristic")
    limited = ("tvd2", "tvd3")

    specs = []
    seen = set()
    unsupported: List[Tuple[str, str]] = []
    for riemann, reconstruction, variant, ndim in itertools.product(
        RIEMANN_SOLVERS, reconstructions, variables, (1, 2)
    ):
        limiters = tuple(LIMITERS) if reconstruction in limited else ("minmod",)
        for limiter in limiters:
            config = SolverConfig(
                riemann=riemann,
                reconstruction=reconstruction,
                limiter=limiter,
                variables=variant,
            )
            spec, reason = spec_from_config(config, ndim)
            if spec is None:
                label = f"{riemann}/{reconstruction}/{limiter}/{variant}/{ndim}d"
                unsupported.append((label, str(reason)))
                continue
            if spec in seen:
                continue
            seen.add(spec)
            specs.append(spec)

    for spec in specs:
        label = spec.label()
        # verify_kernel raises as soon as *any* error is on its engine,
        # so each spec gets a private one; findings are merged after.
        local = DiagnosticEngine()
        try:
            flux_ir = build_flux_ir(spec)
            dt_ir = build_dt_ir(spec)
            verify_kernel(flux_ir, label, engine=local)
            verify_kernel(dt_ir, label, engine=local)
        except AnalysisError:
            engine.extend(local.diagnostics)
            continue
        engine.extend(local.diagnostics)
        # Representative two-strip plan: enough to exercise every
        # cross-strip check (the proof is layout-generic in `cells`).
        amap = codegen.sweep_access_map(spec, flux_ir)
        proof = deps.prove_strips(
            amap, ((0, 4), (4, 8)), spec.ghost_cells, where=label
        )
        engine.extend(proof.diagnostics)
        deps.prove_footprint(
            codegen.dt_access_map(spec, dt_ir), engine=engine, where=label
        )
    return len(specs), unsupported


def _lint_target(
    name: str,
    kind: str,
    defines: Dict[str, object],
    engine: DiagnosticEngine,
    pipeline: bool,
) -> None:
    if kind == "sac":
        from repro.sac.api import load_program_source

        lint_sac_source(
            load_program_source(name), defines, engine=engine, pipeline=pipeline
        )
    else:
        from repro.f90.api import load_program_source

        lint_f90_source(load_program_source(name), engine=engine)


def _classify(path: str) -> str:
    if path.endswith(".sac"):
        return "sac"
    if path.endswith((".f90", ".f", ".F90")):
        return "f90"
    raise SystemExit(f"repro.lint: cannot classify {path!r} (.sac or .f90)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis over SaC and Fortran-90 sources "
        "(IR verification, with-loop disjointness/bounds, autopar race "
        "cross-check).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".sac / .f90 files; default: the bundled Euler programs",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit JSONL diagnostics (repro.obs.export schema)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report/JSONL here instead of stdout",
    )
    parser.add_argument(
        "--define",
        "-D",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="compile-time define for .sac targets (int or float)",
    )
    parser.add_argument(
        "--no-pipeline",
        action="store_true",
        help="skip the -O3 verify_ir compile of .sac targets",
    )
    parser.add_argument(
        "--jit",
        action="store_true",
        help="lower, verify and dependence-prove the full compiled-kernel "
        "specialization matrix (with no paths, lints only the matrix)",
    )
    arguments = parser.parse_args(argv)

    defines: Dict[str, object] = {}
    for item in arguments.define:
        name, _, text = item.partition("=")
        if not _:
            raise SystemExit(f"repro.lint: bad define {item!r} (want NAME=VALUE)")
        try:
            defines[name] = int(text)
        except ValueError:
            try:
                defines[name] = float(text)
            except ValueError:
                raise SystemExit(
                    f"repro.lint: define {item!r} is neither int nor float"
                ) from None

    engine = DiagnosticEngine()
    targets: List[Tuple[str, str, Dict[str, object]]]
    if arguments.paths:
        targets = [(path, _classify(path), dict(defines)) for path in arguments.paths]
    elif arguments.jit:
        targets = []
    else:
        targets = builtin_targets()

    checked: List[str] = []
    for name, kind, target_defines in targets:
        before = len(engine)
        try:
            _lint_target(
                name, kind, target_defines, engine, pipeline=not arguments.no_pipeline
            )
        except ReproError as error:
            engine.error(
                "LINT-FAIL",
                f"{name}: {type(error).__name__}: {error}",
                source="repro.lint",
                where=name,
            )
        checked.append(f"{name}: {len(engine) - before} finding(s)")

    if arguments.jit:
        before = len(engine)
        try:
            verified, unsupported = lint_jit_kernels(engine)
        except ReproError as error:
            engine.error(
                "LINT-FAIL",
                f"jit kernel matrix: {type(error).__name__}: {error}",
                source="repro.lint",
                where="jit-matrix",
            )
        else:
            checked.append(
                f"jit kernel matrix: {verified} spec(s) verified, "
                f"{len(unsupported)} unsupported (NumPy-only), "
                f"{len(engine) - before} finding(s)"
            )

    stream = open(arguments.output, "w") if arguments.output else sys.stdout
    try:
        if arguments.json:
            for diagnostic in engine:
                stream.write(json.dumps(diagnostic.to_dict()))
                stream.write("\n")
        else:
            for line in checked:
                stream.write(f"checked {line}\n")
            stream.write(engine.format())
            stream.write("\n")
    finally:
        if arguments.output:
            stream.close()
    return 1 if engine.has_errors() else 0
