"""IR verifier for the SaC mini-compiler.

Checks the invariants every optimisation pass must preserve.  The
verifier runs standalone (:func:`verify_module`) or between every
pipeline pass (``PipelineOptions.verify_ir``), in which case the
diagnostics carry the name of the pass after which the IR first went
wrong — turning "the program computes garbage at -O3" into "pass X
broke function Y".

Checks and codes:

``SAC-IR001``
    A variable is read on a path where no definition reaches it.  The
    walk mirrors the type checker's conditional-definition rule: a
    name defined in only one branch of an ``if`` (or only inside a
    loop body) is *maybe*-defined and may not be used after.
``SAC-IR002``
    Binder hygiene: duplicate parameter names, duplicate index
    variables in one generator (errors); a local rebinding a module
    constant or ``-D`` define (warning — legal shadowing, but a
    classic source of pass confusion).
``SAC-IR003``
    The module no longer type checks (:class:`repro.sac.typecheck.TypeChecker`
    re-run from scratch) — shape or base-type consistency was lost.
``SAC-IR004``
    Malformed with-loop partition: no generators, a generator without
    index variables, or a vector binder with more than one name.
``SAC-IR005``
    A ``reuse_in_place`` annotation the memory-reuse analysis would
    not derive from the current IR — the reused buffer may still be
    live (aliased by a parameter or read later), so an in-place
    update would be observable.
``SAC-IR006``
    A call to a function that exists neither in the module nor in the
    builtin library.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diag import DiagnosticEngine
from repro.errors import SacError
from repro.sac import ast, stdlib
from repro.sac.opt import memreuse, util
from repro.sac.typecheck import TypeChecker

__all__ = ["verify_module", "verify_function"]

SOURCE = "sac-verify"


def verify_module(
    module: ast.Module,
    defines: Optional[Dict[str, object]] = None,
    *,
    engine: Optional[DiagnosticEngine] = None,
    stage: Optional[str] = None,
    typecheck: bool = True,
) -> DiagnosticEngine:
    """Run every IR check over ``module``; returns the engine.

    ``stage`` names the optimisation pass that just ran (pipeline
    verification) and is attached to every diagnostic.  ``defines``
    are the ``-D`` compile-time constants, needed for the type
    re-check.  The caller decides what to do with errors —
    :meth:`DiagnosticEngine.raise_if_errors` escalates.
    """
    engine = engine if engine is not None else DiagnosticEngine()
    before = len(engine.errors)
    module_names = {g.name for g in module.globals} | set(defines or {})
    for function in module.functions:
        verify_function(function, module, module_names, engine, stage=stage)
    structural_errors = len(engine.errors) > before
    # Re-typecheck only structurally sound IR: the checker assumes the
    # invariants above and may crash (rather than diagnose) without them.
    if typecheck and not structural_errors:
        try:
            TypeChecker(module, defines).check_all()
        except SacError as error:
            engine.error(
                "SAC-IR003",
                f"module no longer type checks: {error}",
                source=SOURCE,
                stage=stage,
            )
    return engine


def verify_function(
    function: ast.Function,
    module: ast.Module,
    module_names: Set[str],
    engine: DiagnosticEngine,
    *,
    stage: Optional[str] = None,
) -> None:
    """All per-function structural checks (no type re-check)."""
    _check_binders(function, module_names, engine, stage)
    _check_use_def(function, module_names, engine, stage)
    _check_with_loop_structure(function, engine, stage)
    _check_reuse_annotations(function, engine, stage)
    _check_calls(function, module, engine, stage)


# --------------------------------------------------------------------------
# SAC-IR001 — use before definition
# --------------------------------------------------------------------------


def _check_use_def(
    function: ast.Function,
    module_names: Set[str],
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    defined = {param.name for param in function.params} | set(module_names)
    maybe: Set[str] = set()
    reported: Set[str] = set()

    def check_expr(expr: ast.Expr, span) -> None:
        for name in sorted(util.free_vars(expr)):
            if name in defined or name in reported:
                continue
            reported.add(name)
            if name in maybe:
                engine.error(
                    "SAC-IR001",
                    f"variable '{name}' may be undefined "
                    "(defined on only some control-flow paths)",
                    source=SOURCE,
                    where=function.name,
                    span=span,
                    stage=stage,
                )
            else:
                engine.error(
                    "SAC-IR001",
                    f"variable '{name}' is used before any definition",
                    source=SOURCE,
                    where=function.name,
                    span=span,
                    stage=stage,
                )

    def walk(statements: Iterable[ast.Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                check_expr(statement.expr, statement.span)
                defined.add(statement.name)
                maybe.discard(statement.name)
            elif isinstance(statement, ast.Return):
                check_expr(statement.expr, statement.span)
            elif isinstance(statement, ast.If):
                check_expr(statement.condition, statement.span)
                branch_defs = []
                for body in (statement.then_body, statement.else_body):
                    snapshot_defined = set(defined)
                    snapshot_maybe = set(maybe)
                    walk(body)
                    branch_defs.append(set(defined))
                    defined.clear()
                    defined.update(snapshot_defined)
                    maybe.clear()
                    maybe.update(snapshot_maybe)
                both = branch_defs[0] & branch_defs[1]
                either = branch_defs[0] | branch_defs[1]
                maybe.update(either - both - defined)
                defined.update(both)
            elif isinstance(statement, ast.For):
                check_expr(statement.init.expr, statement.init.span)
                defined.add(statement.init.name)
                maybe.discard(statement.init.name)
                check_expr(statement.condition, statement.span)
                _walk_loop_body(
                    list(statement.body) + [statement.update]
                )
            elif isinstance(statement, ast.While):
                check_expr(statement.condition, statement.span)
                _walk_loop_body(statement.body)

    def _walk_loop_body(body: List[ast.Stmt]) -> None:
        # A loop body may run zero times: its definitions only
        # *maybe* reach the code after the loop.
        snapshot_defined = set(defined)
        snapshot_maybe = set(maybe)
        walk(body)
        body_defs = set(defined) - snapshot_defined
        defined.clear()
        defined.update(snapshot_defined)
        maybe.clear()
        maybe.update(snapshot_maybe | body_defs)

    walk(function.body)


# --------------------------------------------------------------------------
# SAC-IR002 — binder hygiene
# --------------------------------------------------------------------------


def _check_binders(
    function: ast.Function,
    module_names: Set[str],
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    param_names = [param.name for param in function.params]
    for name in sorted({n for n in param_names if param_names.count(n) > 1}):
        engine.error(
            "SAC-IR002",
            f"duplicate parameter name '{name}'",
            source=SOURCE,
            where=function.name,
            span=function.span,
            stage=stage,
        )
    for expr in _function_exprs(function):
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.WithLoop):
                for generator in node.generators:
                    seen: Set[str] = set()
                    for name in generator.index_vars:
                        if name in seen:
                            engine.error(
                                "SAC-IR002",
                                f"duplicate index variable '{name}' "
                                "in with-loop generator",
                                source=SOURCE,
                                where=function.name,
                                span=generator.span,
                                stage=stage,
                            )
                        seen.add(name)
    for statement in _all_statements(function.body):
        if isinstance(statement, ast.Assign) and statement.name in module_names:
            engine.warning(
                "SAC-IR002",
                f"local assignment shadows module constant '{statement.name}'",
                source=SOURCE,
                where=function.name,
                span=statement.span,
                stage=stage,
            )


# --------------------------------------------------------------------------
# SAC-IR004 — malformed with-loop partitions
# --------------------------------------------------------------------------


def _check_with_loop_structure(
    function: ast.Function,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    for expr in _function_exprs(function):
        for node in ast.walk_expr(expr):
            if not isinstance(node, ast.WithLoop):
                continue
            if not node.generators:
                engine.error(
                    "SAC-IR004",
                    "with-loop has no generators (dangling partition)",
                    source=SOURCE,
                    where=function.name,
                    span=node.span,
                    stage=stage,
                )
                continue
            for generator in node.generators:
                if not generator.index_vars:
                    engine.error(
                        "SAC-IR004",
                        "with-loop generator binds no index variables",
                        source=SOURCE,
                        where=function.name,
                        span=generator.span,
                        stage=stage,
                    )
                if generator.vector_var and len(generator.index_vars) != 1:
                    engine.error(
                        "SAC-IR004",
                        "vector index binder must be a single name, got "
                        f"{generator.index_vars!r}",
                        source=SOURCE,
                        where=function.name,
                        span=generator.span,
                        stage=stage,
                    )


# --------------------------------------------------------------------------
# SAC-IR005 — memory-reuse alias safety
# --------------------------------------------------------------------------


def _check_reuse_annotations(
    function: ast.Function,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    justified = _justified_reuse_sites(function)
    for expr in _function_exprs(function):
        for node in ast.walk_expr(expr):
            if not isinstance(node, ast.WithLoop):
                continue
            if not getattr(node, "reuse_in_place", False):
                continue
            if id(node) in justified:
                continue
            detail = "the reused buffer may still be live"
            if not isinstance(node.operation, ast.ModArray):
                detail = "only modarray with-loops may reuse their source"
            elif not isinstance(node.operation.array, ast.Var):
                detail = "the reuse source is not a variable"
            engine.error(
                "SAC-IR005",
                f"unsafe reuse_in_place annotation: {detail}",
                source=SOURCE,
                where=function.name,
                span=node.span,
                stage=stage,
            )


def _justified_reuse_sites(function: ast.Function) -> Set[int]:
    """Node ids the memory-reuse analysis would annotate from scratch.

    This mirrors :func:`repro.sac.opt.memreuse._annotate_function`
    exactly — the verifier accepts an annotation iff the analysis,
    re-run on the current IR, would (re)derive it.
    """
    justified: Set[int] = set()
    fresh_locals: Set[str] = set()
    statements = function.body
    for position, statement in enumerate(statements):
        if isinstance(statement, ast.Assign):
            if memreuse._is_fresh(statement.expr):
                fresh_locals.add(statement.name)
            else:
                fresh_locals.discard(statement.name)
        elif not isinstance(statement, ast.Return):
            fresh_locals.clear()
            continue
        expr = statement.expr
        loop = expr if isinstance(expr, ast.WithLoop) else None
        if (
            loop is None
            or not isinstance(loop.operation, ast.ModArray)
            or not isinstance(loop.operation.array, ast.Var)
        ):
            continue
        source = loop.operation.array.name
        if source not in fresh_locals:
            continue
        reads_after = sum(
            memreuse._reads_in_stmt(later, source)
            for later in statements[position + 1 :]
        )
        reads_in_this = util._read_occurrences(expr).count(source)
        if reads_after == 0 and reads_in_this == 1:
            justified.add(id(loop))
        fresh_locals.discard(source)
    return justified


# --------------------------------------------------------------------------
# SAC-IR006 — unknown functions
# --------------------------------------------------------------------------


def _check_calls(
    function: ast.Function,
    module: ast.Module,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    local_functions = {f.name for f in module.functions}
    for expr in _function_exprs(function):
        for node in ast.walk_expr(expr):
            if not isinstance(node, ast.Call):
                continue
            if node.module is None and node.name in local_functions:
                continue
            try:
                builtin = stdlib.lookup(node.name, node.module)
            except SacError as error:
                engine.error(
                    "SAC-IR006",
                    str(error),
                    source=SOURCE,
                    where=function.name,
                    span=node.span,
                    stage=stage,
                )
                continue
            if builtin is None:
                qualified = (
                    f"{node.module}::{node.name}" if node.module else node.name
                )
                engine.error(
                    "SAC-IR006",
                    f"call to unknown function '{qualified}'",
                    source=SOURCE,
                    where=function.name,
                    span=node.span,
                    stage=stage,
                )


# --------------------------------------------------------------------------
# traversal helpers
# --------------------------------------------------------------------------


def _all_statements(statements: Iterable[ast.Stmt]):
    for statement in statements:
        yield statement
        if isinstance(statement, ast.If):
            yield from _all_statements(statement.then_body)
            yield from _all_statements(statement.else_body)
        elif isinstance(statement, ast.For):
            yield statement.init
            yield statement.update
            yield from _all_statements(statement.body)
        elif isinstance(statement, ast.While):
            yield from _all_statements(statement.body)


def _function_exprs(function: ast.Function):
    """Every top-level expression in the function, statement order."""
    for statement in _all_statements(function.body):
        if isinstance(statement, (ast.Assign, ast.Return)):
            yield statement.expr
        elif isinstance(statement, ast.If):
            yield statement.condition
        elif isinstance(statement, ast.For):
            yield statement.condition
        elif isinstance(statement, ast.While):
            yield statement.condition
