"""Unified diagnostics for every static checker in :mod:`repro.analysis`.

A :class:`Diagnostic` is one finding: a stable machine-matchable code
(``SAC-IR001``, ``F90-RACE002``, ...), a severity, a human message, and
enough location to act on it — the tool/source it came from, the
function or loop it names, a :class:`repro.sac.source.Span`, and
free-form notes.  Checkers append findings to a shared
:class:`DiagnosticEngine`, which collates, formats, serialises
(:meth:`Diagnostic.to_dict` is the JSONL schema shared with
:mod:`repro.obs.export`) and converts errors into
:class:`repro.errors.AnalysisError` on demand.

Diagnostic codes are part of the public contract — tests assert on
them, and renumbering breaks downstream tooling.  Current assignments:

========== =============================================================
code       meaning
========== =============================================================
SAC-IR001  use of a variable with no reaching definition
SAC-IR002  binder hygiene: duplicate binder or rebound module constant
SAC-IR003  type/shape inconsistency (re-check against ``sac.typecheck``)
SAC-IR004  malformed with-loop partition (no generators, empty or
           inconsistent index binders)
SAC-IR005  unsafe ``reuse_in_place`` memory-reuse annotation
SAC-IR006  call to an unknown function
SAC-WL001  generator bounds or body offset outside the result frame
SAC-WL002  overlapping with-loop generators (non-disjoint writes)
SAC-WL003  generators do not cover the frame and no default exists
SAC-WL004  note: all generator pairs proven disjoint with *symbolic*
           bounds (assuming nonnegative size symbols)
DEP001     kernel access provably outside the declared extent/ghost
           width (out-of-bounds stencil read)
DEP002     overlapping writes between strips or loop iterations
           (parallel execution would race)
DEP003     read-after-write between strips (threading would reorder)
DEP004     dependence proof unavailable — dispatcher must serialize
F90-RACE001 autopar marked a loop parallel that may race (hard error)
F90-RACE002 checker proves a loop independent that autopar serialised
========== =============================================================

``SAC-*``/``F90-*`` come from the SaC/Fortran front-end checkers;
``DEP*`` from the affine dependence prover (:mod:`repro.analysis.deps`)
that licenses the threaded JIT strip dispatch and upgrades
``wl-check``'s symbolic-bounds verdicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.sac.source import Span

__all__ = ["Severity", "Diagnostic", "DiagnosticEngine"]


class Severity(enum.Enum):
    """How bad a finding is; only ``ERROR`` fails a lint run."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One immutable finding from one checker.

    ``source`` names the producing tool (``sac-verify``, ``wl-check``,
    ``f90-races``); ``where`` is the enclosing function or loop label;
    ``stage`` is the optimisation pass after which an IR verifier
    finding appeared (``None`` outside pipeline verification).
    """

    code: str
    severity: Severity
    message: str
    source: str
    where: str = ""
    span: Optional[Span] = None
    stage: Optional[str] = None
    notes: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSONL form; ``kind`` discriminates from step-trace records."""
        return {
            "kind": "diagnostic",
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
            "where": self.where,
            "line": self.span.line if self.span else 0,
            "column": self.span.column if self.span else 0,
            "stage": self.stage,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (tolerates the ``kind`` tag)."""
        data = dict(payload)
        data.pop("kind", None)
        line = int(data.pop("line", 0))
        column = int(data.pop("column", 0))
        span = Span(line, column) if (line or column) else None
        return cls(
            code=str(data["code"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
            source=str(data["source"]),
            where=str(data.get("where", "")),
            span=span,
            stage=data.get("stage") or None,
            notes=tuple(data.get("notes", ())),
        )

    def format(self) -> str:
        """One-line human rendering, ``file:line`` style."""
        location = self.where or "<module>"
        if self.span and self.span.line:
            location = f"{location}:{self.span}"
        head = f"{location}: {self.severity.value}: {self.message} [{self.code}]"
        if self.stage:
            head += f" (after pass '{self.stage}')"
        for note in self.notes:
            head += f"\n    note: {note}"
        return head


class DiagnosticEngine:
    """Collects :class:`Diagnostic` findings across checkers.

    One engine per lint invocation; checkers receive it (or create a
    private one) and :meth:`emit` findings.  The engine knows how to
    count by severity, render a report, serialise for
    :mod:`repro.obs.export`, and escalate errors to
    :class:`~repro.errors.AnalysisError`.
    """

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    # -- emission -------------------------------------------------------

    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, code: str, message: str, *, source: str, **kw) -> Diagnostic:
        return self.emit(
            Diagnostic(code, Severity.ERROR, message, source, **kw)
        )

    def warning(self, code: str, message: str, *, source: str, **kw) -> Diagnostic:
        return self.emit(
            Diagnostic(code, Severity.WARNING, message, source, **kw)
        )

    def note(self, code: str, message: str, *, source: str, **kw) -> Diagnostic:
        return self.emit(
            Diagnostic(code, Severity.NOTE, message, source, **kw)
        )

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diagnostic in diagnostics:
            self.emit(diagnostic)

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        """All emitted codes, in emission order (handy in tests)."""
        return [d.code for d in self.diagnostics]

    # -- output ---------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        return [d.to_dict() for d in self.diagnostics]

    def format(self) -> str:
        """Multi-line report plus a severity summary line."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} diagnostic(s) total"
        )
        return "\n".join(lines)

    def raise_if_errors(self, context: str = "static analysis") -> None:
        """Raise :class:`AnalysisError` carrying the error diagnostics."""
        errors = self.errors
        if not errors:
            return
        summary = "; ".join(d.format().splitlines()[0] for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... {len(errors) - 3} more"
        raise AnalysisError(
            f"{context} failed with {len(errors)} error(s): {summary}",
            diagnostics=self.diagnostics,
            stage=errors[0].stage,
        )
