"""With-loop write-disjointness and index-bounds checking.

The paper's claim that the SaC compiler "may parallelise every
with-loop" rests on partitions being *disjoint* (no two generators
write the same cell) and *in bounds* (every write lands inside the
result frame).  This checker proves both statically wherever the
generator bounds are compile-time constants.  *Symbolic* bounds (a
scalar ``int`` parameter like ``n`` in ``[0] <= [i] < [n]``) become
affine :class:`~repro.analysis.deps.LinExpr` boxes and the shared
dependence prover (:func:`repro.analysis.deps.box_relation`) delivers
real verdicts — proven disjoint under the symbols-nonnegative
assumption, or proven overlapping with a concrete witness — where the
constant-only logic used to stay silent.  Anything still undecidable
stays silent: zero false positives.

Codes:

``SAC-WL001``
    A generator's box sticks out of the result frame, or an indexing
    in a generator body provably reads outside a known array extent
    for some index in the box (NumPy would wrap negative indices
    silently — the classic silent wrong answer).
``SAC-WL002``
    Two generators of one with-loop overlap: the same cell is written
    twice, so parallel execution of the partitions would race (the
    serial interpreter hides this — last generator wins).  With
    symbolic bounds the diagnostic names a concrete witness assignment.
``SAC-WL003``
    A ``genarray`` without a default whose generators provably do not
    cover the frame (warning: this implementation zero-fills the gap,
    real SaC rejects the program).
``SAC-WL004``
    Note: every generator pair of a with-loop with *symbolic* bounds
    was proven disjoint, assuming the size symbols are nonnegative
    integers — the positive verdict the paper's parallelization story
    needs, made visible.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis import deps
from repro.analysis.diag import DiagnosticEngine
from repro.sac import ast

__all__ = ["check_with_loops"]

SOURCE = "wl-check"

#: (lower, upper) vectors of a half-open box, or None when symbolic
Box = Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]


def check_with_loops(
    module: ast.Module,
    defines: Optional[Dict[str, object]] = None,
    *,
    engine: Optional[DiagnosticEngine] = None,
    stage: Optional[str] = None,
) -> DiagnosticEngine:
    """Check every with-loop in ``module``; returns the engine."""
    engine = engine if engine is not None else DiagnosticEngine()
    consts: Dict[str, np.ndarray] = {}
    for name, value in (defines or {}).items():
        consts[name] = np.asarray(value)
    for definition in module.globals:
        value = _const_eval(definition.expr, consts)
        if value is not None:
            consts[definition.name] = value
    for function in module.functions:
        _check_block(function.body, dict(consts), function.name, engine, stage)
    return engine


def _check_block(
    statements: List[ast.Stmt],
    consts: Dict[str, np.ndarray],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    for statement in statements:
        if isinstance(statement, (ast.Assign, ast.Return)):
            _check_expr(statement.expr, consts, where, engine, stage)
            if isinstance(statement, ast.Assign):
                value = _const_eval(statement.expr, consts)
                if value is not None:
                    consts[statement.name] = value
                else:
                    consts.pop(statement.name, None)
        elif isinstance(statement, ast.If):
            _check_expr(statement.condition, consts, where, engine, stage)
            _check_block(statement.then_body, dict(consts), where, engine, stage)
            _check_block(statement.else_body, dict(consts), where, engine, stage)
            # branch assignments invalidate straight-line constants
            for name in _assigned_names(statement.then_body):
                consts.pop(name, None)
            for name in _assigned_names(statement.else_body):
                consts.pop(name, None)
        elif isinstance(statement, (ast.For, ast.While)):
            # nothing assigned in the body is constant across iterations
            body = list(statement.body)
            if isinstance(statement, ast.For):
                body += [statement.init, statement.update]
            loop_consts = dict(consts)
            for name in _assigned_names(body):
                loop_consts.pop(name, None)
            _check_expr(statement.condition, loop_consts, where, engine, stage)
            _check_block(statement.body, dict(loop_consts), where, engine, stage)
            for name in _assigned_names(body):
                consts.pop(name, None)


def _assigned_names(statements: Iterable[ast.Stmt]) -> List[str]:
    names: List[str] = []
    for statement in statements:
        if isinstance(statement, ast.Assign):
            names.append(statement.name)
        elif isinstance(statement, ast.If):
            names += _assigned_names(statement.then_body)
            names += _assigned_names(statement.else_body)
        elif isinstance(statement, ast.For):
            names.append(statement.init.name)
            names.append(statement.update.name)
            names += _assigned_names(statement.body)
        elif isinstance(statement, ast.While):
            names += _assigned_names(statement.body)
    return names


def _check_expr(
    expr: ast.Expr,
    consts: Dict[str, np.ndarray],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.WithLoop):
            _check_with_loop(node, consts, where, engine, stage)
        elif isinstance(node, ast.SetComprehension):
            _check_set_comprehension(node, consts, where, engine, stage)


# --------------------------------------------------------------------------
# one with-loop
# --------------------------------------------------------------------------


def _check_with_loop(
    loop: ast.WithLoop,
    consts: Dict[str, np.ndarray],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    frame = _frame_of(loop, consts)
    boxes = [
        _generator_box(generator, frame, consts)
        for generator in loop.generators
    ]

    for generator, box in zip(loop.generators, boxes):
        if box is None:
            continue
        lower, upper = box
        if frame is not None:
            rank = len(lower)
            if rank > len(frame):
                engine.error(
                    "SAC-WL001",
                    f"rank-{rank} generator over a rank-{len(frame)} frame",
                    source=SOURCE,
                    where=where,
                    span=generator.span,
                    stage=stage,
                )
                continue
            if any(lo < 0 for lo in lower) or any(
                hi > extent for hi, extent in zip(upper, frame)
            ):
                engine.error(
                    "SAC-WL001",
                    f"generator box {list(lower)}..{list(upper)} exceeds "
                    f"the result frame {list(frame[:rank])}",
                    source=SOURCE,
                    where=where,
                    span=generator.span,
                    stage=stage,
                )
        if not generator.vector_var:
            _check_body_offsets(generator, box, where, engine, stage)

    # pairwise disjointness: constant boxes use the exact integer
    # check; a pair involving symbolic bounds goes to the shared
    # dependence prover, whose verdicts hold for all nonnegative
    # values of the size symbols.
    count = len(boxes)
    sym_boxes: List[Optional[deps.SymBox]] = [None] * count
    if count > 1 and any(box is None for box in boxes):
        sym_boxes = [
            _sym_generator_box(generator, frame, consts) if box is None else None
            for generator, box in zip(loop.generators, boxes)
        ]
    symbolic_pairs = 0
    proven_pairs = 0
    total_pairs = 0
    for first in range(count):
        for second in range(first + 1, count):
            total_pairs += 1
            one, two = boxes[first], boxes[second]
            if one is not None and two is not None:
                if len(one[0]) != len(two[0]):
                    continue
                if _boxes_overlap(one, two):
                    engine.error(
                        "SAC-WL002",
                        f"generators {first + 1} and {second + 1} overlap: "
                        f"{list(one[0])}..{list(one[1])} intersects "
                        f"{list(two[0])}..{list(two[1])} "
                        "(the partitions are not disjoint, so they cannot "
                        "be run in parallel)",
                        source=SOURCE,
                        where=where,
                        span=loop.generators[second].span,
                        stage=stage,
                    )
                else:
                    proven_pairs += 1
                continue
            sym_one = sym_boxes[first] if one is None else _concrete_sym(one)
            sym_two = sym_boxes[second] if two is None else _concrete_sym(two)
            if sym_one is None or sym_two is None:
                continue
            if len(sym_one[0]) != len(sym_two[0]):
                continue
            verdict, witness = deps.box_relation(sym_one, sym_two)
            symbolic_pairs += 1
            if verdict == "overlap":
                at = ""
                if witness:
                    values = ", ".join(
                        f"{name} = {value}"
                        for name, value in sorted(witness.items())
                    )
                    at = f" (e.g. at {values})"
                engine.error(
                    "SAC-WL002",
                    f"generators {first + 1} and {second + 1} overlap{at}: "
                    f"{_sym_box_text(sym_one)} intersects "
                    f"{_sym_box_text(sym_two)} "
                    "(the partitions are not disjoint, so they cannot "
                    "be run in parallel)",
                    source=SOURCE,
                    where=where,
                    span=loop.generators[second].span,
                    stage=stage,
                )
            elif verdict == "disjoint":
                proven_pairs += 1
    if symbolic_pairs and proven_pairs == total_pairs:
        engine.note(
            "SAC-WL004",
            f"all {total_pairs} generator pair(s) proven disjoint with "
            "symbolic bounds, assuming the size symbols are nonnegative "
            "integers — the partitions may run in parallel",
            source=SOURCE,
            where=where,
            span=loop.span,
            stage=stage,
        )

    _check_coverage(loop, frame, boxes, where, engine, stage)


def _frame_of(
    loop: ast.WithLoop, consts: Dict[str, np.ndarray]
) -> Optional[Tuple[int, ...]]:
    operation = loop.operation
    if isinstance(operation, ast.GenArray):
        shape = _const_eval(operation.shape, consts)
        if shape is None:
            return None
        vector = np.atleast_1d(shape)
        if vector.ndim != 1 or not np.issubdtype(vector.dtype, np.integer):
            return None
        return tuple(int(v) for v in vector)
    if isinstance(operation, ast.ModArray):
        sac_type = getattr(operation.array, "sac_type", None)
        dims = getattr(sac_type, "dims", None)
        if dims is None or any(d is None for d in dims):
            return None
        return tuple(dims) + tuple(getattr(sac_type, "suffix", ()))
    return None  # fold: no frame, bounds are explicit


def _generator_box(
    generator: ast.Generator,
    frame: Optional[Tuple[int, ...]],
    consts: Dict[str, np.ndarray],
) -> Box:
    rank = None if generator.vector_var else len(generator.index_vars)

    def side(expr: Optional[ast.Expr]) -> Optional[np.ndarray]:
        if expr is None:
            return None
        value = _const_eval(expr, consts)
        if value is None:
            return None
        vector = np.atleast_1d(value)
        if vector.ndim != 1 or not np.issubdtype(vector.dtype, np.integer):
            return None
        return vector

    lower = side(generator.lower)
    upper = side(generator.upper)
    if generator.lower is not None and lower is None:
        return None
    if generator.upper is not None and upper is None:
        return None
    if upper is None and frame is None:
        return None
    if rank is None:
        for candidate in (lower, upper):
            if candidate is not None:
                rank = len(candidate)
                break
        else:
            rank = len(frame)  # type: ignore[arg-type]
    if lower is None:
        lower = np.zeros(rank, dtype=int)
    if upper is None:
        upper = np.asarray(frame[:rank], dtype=int)
        inclusive_upper = False
    else:
        inclusive_upper = generator.upper_inclusive
    if len(lower) != rank or len(upper) != rank:
        return None
    low = tuple(
        int(v) + (0 if generator.lower_inclusive or generator.lower is None else 1)
        for v in lower
    )
    high = tuple(int(v) + (1 if inclusive_upper else 0) for v in upper)
    return low, high


def _sym_scalar(
    expr: ast.Expr, consts: Dict[str, np.ndarray]
) -> Optional[deps.LinExpr]:
    """``expr`` as an affine expression over scalar ``int`` parameters.

    An unknown variable counts as a symbol only when the type checker
    annotated it as a scalar ``int`` — an unannotated or non-scalar
    name stays unprovable (None) rather than guessed.
    """
    if isinstance(expr, ast.IntLit):
        return deps.LinExpr.of(expr.value)
    if isinstance(expr, ast.Var):
        known = consts.get(expr.name)
        if known is not None:
            if known.ndim == 0 and np.issubdtype(known.dtype, np.integer):
                return deps.LinExpr.of(int(known))
            return None
        sac_type = getattr(expr, "sac_type", None)
        if (
            sac_type is not None
            and getattr(sac_type, "base", None) == "int"
            and getattr(sac_type, "dims", None) == ()
            and getattr(sac_type, "suffix", ()) == ()
        ):
            return deps.LinExpr.var(expr.name)
        return None
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        inner = _sym_scalar(expr.operand, consts)
        return None if inner is None else -inner
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        left = _sym_scalar(expr.left, consts)
        right = _sym_scalar(expr.right, consts)
        if left is None or right is None:
            return None
        return left + right if expr.op == "+" else left - right
    if isinstance(expr, ast.BinOp) and expr.op == "*":
        left = _sym_scalar(expr.left, consts)
        right = _sym_scalar(expr.right, consts)
        if left is None or right is None:
            return None
        for scalar, other in ((left, right), (right, left)):
            if scalar.is_const:
                return other * scalar.const
        return None
    return None


def _sym_bound(
    expr: ast.Expr, consts: Dict[str, np.ndarray]
) -> Optional[Tuple[deps.LinExpr, ...]]:
    """A bound vector with affine (possibly symbolic) components."""
    value = _const_eval(expr, consts)
    if value is not None:
        vector = np.atleast_1d(value)
        if vector.ndim != 1 or not np.issubdtype(vector.dtype, np.integer):
            return None
        return tuple(deps.LinExpr.of(int(v)) for v in vector)
    if isinstance(expr, ast.ArrayLit):
        elements = [_sym_scalar(e, consts) for e in expr.elements]
        if any(e is None for e in elements):
            return None
        return tuple(elements)  # type: ignore[arg-type]
    return None


def _sym_generator_box(
    generator: ast.Generator,
    frame: Optional[Tuple[int, ...]],
    consts: Dict[str, np.ndarray],
) -> Optional[deps.SymBox]:
    """Like :func:`_generator_box` with affine sides; None = unprovable."""
    rank = None if generator.vector_var else len(generator.index_vars)
    lower = (
        _sym_bound(generator.lower, consts)
        if generator.lower is not None
        else None
    )
    upper = (
        _sym_bound(generator.upper, consts)
        if generator.upper is not None
        else None
    )
    if generator.lower is not None and lower is None:
        return None
    if generator.upper is not None and upper is None:
        return None
    if upper is None and frame is None:
        return None
    if rank is None:
        for candidate in (lower, upper):
            if candidate is not None:
                rank = len(candidate)
                break
        else:
            rank = len(frame)  # type: ignore[arg-type]
    if lower is None:
        lower = tuple(deps.LinExpr() for _ in range(rank))
    if upper is None:
        upper = tuple(deps.LinExpr.of(int(v)) for v in frame[:rank])
        inclusive_upper = False
    else:
        inclusive_upper = generator.upper_inclusive
    if len(lower) != rank or len(upper) != rank:
        return None
    low_shift = 0 if generator.lower_inclusive or generator.lower is None else 1
    low = tuple(lo + low_shift for lo in lower)
    high = tuple(hi + (1 if inclusive_upper else 0) for hi in upper)
    return low, high


def _concrete_sym(
    box: Tuple[Tuple[int, ...], Tuple[int, ...]]
) -> deps.SymBox:
    return (
        tuple(deps.LinExpr.of(v) for v in box[0]),
        tuple(deps.LinExpr.of(v) for v in box[1]),
    )


def _sym_box_text(box: deps.SymBox) -> str:
    lowers = ", ".join(str(e) for e in box[0])
    uppers = ", ".join(str(e) for e in box[1])
    return f"[{lowers}]..[{uppers}]"


def _boxes_overlap(
    one: Tuple[Tuple[int, ...], Tuple[int, ...]],
    two: Tuple[Tuple[int, ...], Tuple[int, ...]],
) -> bool:
    if _box_volume(one) == 0 or _box_volume(two) == 0:
        return False
    return all(
        max(lo1, lo2) < min(hi1, hi2)
        for lo1, lo2, hi1, hi2 in zip(one[0], two[0], one[1], two[1])
    )


def _box_volume(box: Tuple[Tuple[int, ...], Tuple[int, ...]]) -> int:
    return math.prod(max(0, hi - lo) for lo, hi in zip(box[0], box[1]))


def _check_coverage(
    loop: ast.WithLoop,
    frame: Optional[Tuple[int, ...]],
    boxes: List[Box],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    operation = loop.operation
    if not isinstance(operation, ast.GenArray) or operation.default is not None:
        return
    if frame is None or any(box is None for box in boxes):
        return
    ranks = {len(box[0]) for box in boxes}  # type: ignore[index]
    if len(ranks) != 1:
        return
    rank = ranks.pop()
    if rank > len(frame):
        return  # already a SAC-WL001
    clipped = [
        (
            tuple(max(0, lo) for lo in box[0]),  # type: ignore[index]
            tuple(min(hi, extent) for hi, extent in zip(box[1], frame)),  # type: ignore[index]
        )
        for box in boxes
    ]
    for first in range(len(clipped)):
        for second in range(first + 1, len(clipped)):
            if _boxes_overlap(clipped[first], clipped[second]):
                return  # volumes would double count; SAC-WL002 already fired
    covered = sum(_box_volume(box) for box in clipped)
    total = math.prod(frame[:rank])
    if covered < total:
        engine.warning(
            "SAC-WL003",
            f"generators cover {covered} of {total} cells and the genarray "
            "has no default (this implementation zero-fills the gap; "
            "real SaC rejects non-covering partitions)",
            source=SOURCE,
            where=where,
            span=loop.span,
            stage=stage,
        )


# --------------------------------------------------------------------------
# body indexings (offsets must stay in shape)
# --------------------------------------------------------------------------


def _check_set_comprehension(
    comp: ast.SetComprehension,
    consts: Dict[str, np.ndarray],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    """``{ [i] -> e | [i] < shape }`` is a one-generator genarray over
    ``[0, shape)`` — its body indexings get the same offset check."""
    if comp.vector_var or comp.bound is None:
        return
    bound = _const_eval(comp.bound, consts)
    if bound is None:
        return
    vector = np.atleast_1d(bound)
    if vector.ndim != 1 or not np.issubdtype(vector.dtype, np.integer):
        return
    if len(vector) != len(comp.index_vars):
        return
    box = (
        tuple(0 for _ in comp.index_vars),
        tuple(int(v) for v in vector),
    )
    _check_offsets(comp.index_vars, comp.body, box, where, engine, stage)


def _check_body_offsets(
    generator: ast.Generator,
    box: Tuple[Tuple[int, ...], Tuple[int, ...]],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    _check_offsets(generator.index_vars, generator.body, box, where, engine, stage)


def _check_offsets(
    index_vars: List[str],
    body: ast.Expr,
    box: Tuple[Tuple[int, ...], Tuple[int, ...]],
    where: str,
    engine: DiagnosticEngine,
    stage: Optional[str],
) -> None:
    lower, upper = box
    if _box_volume(box) == 0:
        return
    axis_of = {name: axis for axis, name in enumerate(index_vars)}
    for node in ast.walk_expr(body):
        if not isinstance(node, ast.Index) or not isinstance(node.array, ast.Var):
            continue
        sac_type = getattr(node.array, "sac_type", None)
        dims = getattr(sac_type, "dims", None)
        if dims is None or any(d is None for d in dims):
            continue
        extents = tuple(dims) + tuple(getattr(sac_type, "suffix", ()))
        for position, index_expr in enumerate(node.indices):
            if position >= len(extents):
                break
            affine = _affine_in(index_expr, axis_of)
            if affine is None:
                continue
            coefficients, constant = affine
            smallest = constant
            largest = constant
            for axis, coefficient in coefficients.items():
                lo, hi = lower[axis], upper[axis] - 1
                smallest += min(coefficient * lo, coefficient * hi)
                largest += max(coefficient * lo, coefficient * hi)
            if smallest < 0 or largest >= extents[position]:
                engine.error(
                    "SAC-WL001",
                    f"index into '{node.array.name}' spans "
                    f"[{smallest}, {largest}] over the generator box but "
                    f"dimension {position} has extent {extents[position]}",
                    source=SOURCE,
                    where=where,
                    span=node.span,
                    stage=stage,
                )


def _affine_in(
    expr: ast.Expr, axis_of: Dict[str, int]
) -> Optional[Tuple[Dict[int, int], int]]:
    """``expr`` as ``sum(coef[axis] * iv[axis]) + const`` over index vars.

    Returns None when the expression involves anything but the
    generator's index variables and integer literals.
    """
    if isinstance(expr, ast.IntLit):
        return {}, expr.value
    if isinstance(expr, ast.Var):
        if expr.name in axis_of:
            return {axis_of[expr.name]: 1}, 0
        return None
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        inner = _affine_in(expr.operand, axis_of)
        if inner is None:
            return None
        coefficients, constant = inner
        return {axis: -c for axis, c in coefficients.items()}, -constant
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        left = _affine_in(expr.left, axis_of)
        right = _affine_in(expr.right, axis_of)
        if left is None or right is None:
            return None
        sign = 1 if expr.op == "+" else -1
        coefficients = dict(left[0])
        for axis, coefficient in right[0].items():
            coefficients[axis] = coefficients.get(axis, 0) + sign * coefficient
        return coefficients, left[1] + sign * right[1]
    if isinstance(expr, ast.BinOp) and expr.op == "*":
        left = _affine_in(expr.left, axis_of)
        right = _affine_in(expr.right, axis_of)
        if left is None or right is None:
            return None
        for scalar, other in ((left, right), (right, left)):
            if not scalar[0]:  # constant factor
                factor = scalar[1]
                return (
                    {axis: factor * c for axis, c in other[0].items()},
                    factor * other[1],
                )
        return None
    return None


# --------------------------------------------------------------------------
# constant evaluation
# --------------------------------------------------------------------------


def _const_eval(
    expr: ast.Expr, consts: Dict[str, np.ndarray]
) -> Optional[np.ndarray]:
    """Evaluate compile-time constants (literals, defines, arithmetic)."""
    if isinstance(expr, ast.IntLit):
        return np.asarray(expr.value)
    if isinstance(expr, ast.DoubleLit):
        return np.asarray(expr.value)
    if isinstance(expr, ast.BoolLit):
        return np.asarray(expr.value)
    if isinstance(expr, ast.Var):
        return consts.get(expr.name)
    if isinstance(expr, ast.ArrayLit):
        elements = [_const_eval(e, consts) for e in expr.elements]
        if any(e is None for e in elements):
            return None
        try:
            return np.stack(elements)  # type: ignore[arg-type]
        except ValueError:
            return None
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        operand = _const_eval(expr.operand, consts)
        return None if operand is None else -operand
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-", "*", "/", "%"):
        left = _const_eval(expr.left, consts)
        right = _const_eval(expr.right, consts)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "%":
                return left % right
            if np.issubdtype(left.dtype, np.integer) and np.issubdtype(
                right.dtype, np.integer
            ):
                return left // right
            return left / right
        except (ValueError, ZeroDivisionError, FloatingPointError):
            return None
    return None
