"""Structural verifier for :mod:`repro.jit` kernel IR.

Runs over every assembled :class:`repro.jit.ir.KernelIR` *before* any C
is generated — the same gate position :mod:`repro.sac.verify` holds in
the SaC pipeline.  The kernels are straight-line SSA, so the checks are
purely structural; a failure means an emitter bug, and the diagnostic
names the specialization so the offending
``(riemann, reconstruction, limiter, variables)`` combination is
identifiable from the error alone.

Diagnostic codes (stable, tests assert on them):

========== ============================================================
code       meaning
========== ============================================================
JIT-IR001  use of an SSA value with no prior definition
JIT-IR002  duplicate SSA definition (a value name defined twice)
JIT-IR003  unknown opcode or wrong operand count for the opcode
JIT-IR004  kernel output missing or referencing an undefined value
JIT-IR005  dtype mismatch (bool where f64 expected or vice versa)
========== ============================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.diag import DiagnosticEngine
from repro.jit.ir import BOOL, F64, OPCODES, KernelIR

__all__ = ["verify_kernel"]

_SOURCE = "jit-verify"


def verify_kernel(
    ir: KernelIR,
    spec_label: str,
    engine: Optional[DiagnosticEngine] = None,
) -> DiagnosticEngine:
    """Check one kernel IR; raises ``AnalysisError`` on any finding.

    ``spec_label`` (e.g. ``hllc/pc/minmod/primitive/float64/2d``) is
    attached as the diagnostic location so failures name the
    specialization that produced the bad IR.
    """
    diag = engine if engine is not None else DiagnosticEngine()
    where = f"{ir.name} [{spec_label}]"
    defined: Dict[str, str] = {}

    for op in ir.ops:
        signature = OPCODES.get(op.opcode)
        if signature is None:
            diag.error(
                "JIT-IR003",
                f"unknown opcode {op.opcode!r} defining {op.name!r}",
                source=_SOURCE,
                where=where,
            )
            defined.setdefault(op.name, op.dtype)
            continue
        arity, arg_dtype, result_dtype = signature
        if len(op.args) != arity:
            diag.error(
                "JIT-IR003",
                f"opcode {op.opcode!r} takes {arity} operand(s), "
                f"{op.name!r} has {len(op.args)}",
                source=_SOURCE,
                where=where,
            )
        for position, arg in enumerate(op.args):
            seen = defined.get(arg)
            if seen is None:
                diag.error(
                    "JIT-IR001",
                    f"{op.name!r} ({op.opcode}) uses {arg!r} "
                    "before any definition",
                    source=_SOURCE,
                    where=where,
                )
                continue
            # select is the one mixed-dtype opcode: (bool, f64, f64).
            expected = (
                (BOOL if position == 0 else F64)
                if op.opcode == "select"
                else arg_dtype
            )
            if seen != expected:
                diag.error(
                    "JIT-IR005",
                    f"{op.name!r} ({op.opcode}) operand {arg!r} is "
                    f"{seen}, expected {expected}",
                    source=_SOURCE,
                    where=where,
                )
        if op.dtype != result_dtype:
            diag.error(
                "JIT-IR005",
                f"{op.name!r} ({op.opcode}) declared {op.dtype}, "
                f"opcode produces {result_dtype}",
                source=_SOURCE,
                where=where,
            )
        if op.name in defined:
            diag.error(
                "JIT-IR002",
                f"SSA value {op.name!r} defined more than once",
                source=_SOURCE,
                where=where,
            )
        defined[op.name] = op.dtype

    if not ir.outputs:
        diag.error(
            "JIT-IR004",
            "kernel declares no outputs",
            source=_SOURCE,
            where=where,
        )
    for label, value in ir.outputs:
        dtype = defined.get(value)
        if dtype is None:
            diag.error(
                "JIT-IR004",
                f"output {label!r} references undefined value {value!r}",
                source=_SOURCE,
                where=where,
            )
        elif dtype != F64:
            diag.error(
                "JIT-IR005",
                f"output {label!r} ({value!r}) is {dtype}, expected {F64}",
                source=_SOURCE,
                where=where,
            )

    diag.raise_if_errors(context=f"jit kernel verification ({spec_label})")
    return diag
