"""Affine stencil-footprint and write-disjointness prover.

The paper's parallelization story rests on the SaC compiler *proving*
with-loop iterations independent before it threads them.  This module
is that proof engine for the reproduction, shared by two clients:

* the compiled-kernel layer (:mod:`repro.jit`): every kernel carries a
  machine-readable **access map** (:class:`AccessMap`, built by
  :func:`repro.jit.codegen.sweep_access_map` from the same geometry the
  C emitter uses) describing each array's affine read/write row indices
  and loop bounds.  :func:`prove_footprint` re-derives the stencil
  footprint from the map and checks it against the declared ghost
  width; :func:`prove_strips` additionally proves that distinct strips
  of a tile plan touch disjoint output rows.  A passing
  :class:`StripProof` — and only a passing one — licenses the threaded
  strip dispatcher in :class:`repro.jit.backend.JitBackend`;
* the with-loop checker (:mod:`repro.analysis.wl_check`): generator
  boxes with *symbolic* bounds become :class:`LinExpr` boxes and
  :func:`box_relation` delivers real verdicts (proven disjoint, proven
  overlapping with a concrete witness) where the constant-only logic
  used to bail.

Everything is affine: a :class:`LinExpr` is ``sum(coef * symbol) +
const`` over integer symbols.  Comparisons are decided under the
documented assumption that every symbol is a **nonnegative** count or
extent (strip cell counts, array sizes); verdicts that depend on the
assumption say so, and anything undecidable is reported as *unknown* —
never guessed.

Diagnostic codes (stable; tests assert on them):

========== ============================================================
code       meaning
========== ============================================================
DEP001     an access provably reads or writes outside the declared
           extent (for the sweep kernels: outside ``cells + 2 * ghost``
           padded rows — an out-of-bounds stencil read)
DEP002     overlapping writes, between two strips of a plan or between
           iterations of one loop (parallel execution would race)
DEP003     read-after-write between strips: one strip reads rows
           another strip writes (threading would reorder the dependence)
DEP004     proof unavailable — non-affine index, unknown symbol, or an
           opcode with unknown effects; the dispatcher must serialize
========== ============================================================

DEP001–003 are error severity, DEP004 a warning: an unprovable kernel
is not *wrong*, it just may not be threaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.diag import Diagnostic, DiagnosticEngine
from repro.jit.ir import OPCODES

__all__ = [
    "LinExpr",
    "Access",
    "AccessMap",
    "StripProof",
    "OPCODE_EFFECTS",
    "nonneg",
    "access_bounds",
    "prove_footprint",
    "prove_strips",
    "box_relation",
]

SOURCE = "deps"

#: Side effects of every kernel opcode, maintained in lockstep with
#: :data:`repro.jit.ir.OPCODES` (the drift-guard test asserts the key
#: sets match).  All current opcodes are pure scalar value producers —
#: no loads, stores, or control flow — so the access map alone
#: describes a kernel's memory behaviour.  An opcode missing here, or
#: mapped to anything but ``"pure"``, makes every proof unavailable
#: (DEP004): the prover refuses to certify effects it does not know.
OPCODE_EFFECTS: Dict[str, str] = {
    "const": "pure",
    "param": "pure",
    "add": "pure",
    "sub": "pure",
    "mul": "pure",
    "div": "pure",
    "neg": "pure",
    "abs": "pure",
    "sqrt": "pure",
    "sign": "pure",
    "minimum": "pure",
    "maximum": "pure",
    "eq": "pure",
    "lt": "pure",
    "gt": "pure",
    "ge": "pure",
    "le": "pure",
    "and_": "pure",
    "select": "pure",
}


# --------------------------------------------------------------------------
# affine expressions over nonnegative integer symbols
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LinExpr:
    """``sum(coef * symbol) + const`` with integer coefficients.

    Symbols stand for nonnegative integers (cell counts, extents);
    ``terms`` is kept sorted so structurally equal expressions compare
    equal.  Arithmetic returns new expressions; ``+``/``-``/``*`` accept
    plain ints.
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(value: Union["LinExpr", int]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        return LinExpr((), int(value))

    @staticmethod
    def var(name: str, coef: int = 1) -> "LinExpr":
        if coef == 0:
            return LinExpr()
        return LinExpr(((name, int(coef)),), 0)

    @staticmethod
    def _normal(terms: Mapping[str, int], const: int) -> "LinExpr":
        kept = tuple(sorted((s, c) for s, c in terms.items() if c != 0))
        return LinExpr(kept, int(const))

    def coef(self, symbol: str) -> int:
        for name, c in self.terms:
            if name == symbol:
                return c
        return 0

    @property
    def symbols(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.terms)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def __add__(self, other: Union["LinExpr", int]) -> "LinExpr":
        other = LinExpr.of(other)
        terms = dict(self.terms)
        for name, c in other.terms:
            terms[name] = terms.get(name, 0) + c
        return LinExpr._normal(terms, self.const + other.const)

    def __sub__(self, other: Union["LinExpr", int]) -> "LinExpr":
        return self + (LinExpr.of(other) * -1)

    def __mul__(self, factor: int) -> "LinExpr":
        factor = int(factor)
        return LinExpr._normal(
            {name: c * factor for name, c in self.terms}, self.const * factor
        )

    def __neg__(self) -> "LinExpr":
        return self * -1

    def subst(self, symbol: str, value: Union["LinExpr", int]) -> "LinExpr":
        """Replace ``symbol`` by ``value`` (an int or another LinExpr)."""
        c = self.coef(symbol)
        if c == 0:
            return self
        rest = LinExpr._normal(
            {name: k for name, k in self.terms if name != symbol}, self.const
        )
        return rest + LinExpr.of(value) * c

    def evaluate(self, env: Mapping[str, int]) -> Optional[int]:
        """Concrete value under ``env``; None when a symbol is missing."""
        total = self.const
        for name, c in self.terms:
            if name not in env:
                return None
            total += c * int(env[name])
        return total

    def __str__(self) -> str:
        parts = [
            (f"{c}*{name}" if c != 1 else name) for name, c in self.terms
        ]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


def nonneg(expr: Union[LinExpr, int]) -> Optional[bool]:
    """Tri-state sign of ``expr`` over nonnegative symbol values.

    ``True`` — provably ``>= 0`` for *every* assignment (all
    coefficients ``>= 0`` and the minimum, at the all-zero point, is
    ``const >= 0``); ``False`` — provably ``< 0`` for every assignment
    (the supremum is negative); ``None`` — the sign depends on the
    symbol values or cannot be decided.  Callers treat None as "proof
    unavailable", never as a verdict.
    """
    expr = LinExpr.of(expr)
    coefs = [c for _, c in expr.terms]
    if all(c >= 0 for c in coefs):
        if expr.const >= 0:
            return True
        if not coefs:
            return False
        # positive coefficients can lift a negative constant: unknown
        return None if any(c > 0 for c in coefs) else False
    if all(c <= 0 for c in coefs):
        return False if expr.const < 0 else None
    return None


# --------------------------------------------------------------------------
# access maps
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Access:
    """One array access of a kernel loop, in *row* units.

    ``row`` is the affine row index as a function of the loop variable
    ``var`` (and symbolic parameters); ``None`` marks a non-affine
    access the prover cannot reason about (DEP004).  ``lower``/``upper``
    is the half-open loop domain.  ``scope`` distinguishes shared
    arrays (windowed per strip by the dispatcher) from strip-private
    scratch the dispatcher allocates one-per-thread; only shared
    accesses participate in cross-strip checks.
    """

    array: str
    mode: str  # "read" | "write"
    row: Optional[LinExpr]
    var: str
    lower: LinExpr
    upper: LinExpr
    scope: str = "shared"

    def to_dict(self) -> Dict[str, object]:
        return {
            "array": self.array,
            "mode": self.mode,
            "row": None if self.row is None else str(self.row),
            "var": self.var,
            "domain": [str(self.lower), str(self.upper)],
            "scope": self.scope,
        }


@dataclass(frozen=True)
class AccessMap:
    """Machine-readable memory behaviour of one compiled kernel.

    ``extents`` gives each array's declared row extent (affine in the
    kernel's size parameters); ``strip_bases`` says how the dispatcher
    windows each shared array per strip — ``"start"`` arrays see a view
    beginning at the strip's global start row, ``"zero"`` arrays are
    passed whole (every strip addresses the same rows).  ``opcodes`` is
    the set of IR opcodes the kernel body executes, checked against
    :data:`OPCODE_EFFECTS` before any proof is issued.
    """

    kernel: str
    accesses: Tuple[Access, ...]
    extents: Mapping[str, LinExpr]
    opcodes: frozenset
    strip_bases: Mapping[str, str] = field(default_factory=dict)

    def base_of(self, array: str) -> str:
        return self.strip_bases.get(array, "start")

    def to_dict(self) -> Dict[str, object]:
        """JSON form — embedded as a comment in the generated C."""
        return {
            "kernel": self.kernel,
            "accesses": [a.to_dict() for a in self.accesses],
            "extents": {k: str(v) for k, v in sorted(self.extents.items())},
            "opcodes": sorted(self.opcodes),
            "strip_bases": dict(sorted(self.strip_bases.items())),
        }


def access_bounds(access: Access) -> Optional[Tuple[LinExpr, LinExpr]]:
    """Inclusive ``(min_row, max_row)`` of one access over its domain.

    The row index is affine in the loop variable with a *known integer*
    coefficient, so the extrema sit at the domain endpoints.  Returns
    None for non-affine accesses.  Callers guard empty domains
    separately; the bounds assume at least one iteration.
    """
    if access.row is None:
        return None
    first = access.lower
    last = access.upper - 1
    c = access.row.coef(access.var)
    at_first = access.row.subst(access.var, first)
    at_last = access.row.subst(access.var, last)
    if c >= 0:
        return at_first, at_last
    return at_last, at_first


# --------------------------------------------------------------------------
# proofs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StripProof:
    """Verdict of :func:`prove_strips`.

    ``licensed`` is True only when every check *proved* safe; ``reason``
    is the short counted string the dispatcher books when it must
    serialize (None when licensed).  ``diagnostics`` carries the full
    findings for lint/CLI surfacing.
    """

    licensed: bool
    reason: Optional[str]
    diagnostics: Tuple[Diagnostic, ...] = ()


def _check_effects(
    amap: AccessMap, engine: DiagnosticEngine, where: str
) -> None:
    unknown = sorted(
        op
        for op in amap.opcodes
        if OPCODE_EFFECTS.get(op) != "pure"
    )
    if unknown:
        engine.warning(
            "DEP004",
            f"kernel {amap.kernel} uses opcode(s) with unknown effects: "
            f"{', '.join(unknown)} — cannot certify memory behaviour",
            source=SOURCE,
            where=where,
        )
    stray = sorted(amap.opcodes - set(OPCODES))
    if stray:
        engine.warning(
            "DEP004",
            f"kernel {amap.kernel} uses opcode(s) absent from the IR "
            f"opcode table: {', '.join(stray)}",
            source=SOURCE,
            where=where,
        )


def prove_footprint(
    amap: AccessMap,
    ghost_cells: Optional[int] = None,
    *,
    engine: Optional[DiagnosticEngine] = None,
    where: str = "",
) -> DiagnosticEngine:
    """Prove every access in bounds for all nonnegative parameter values.

    With ``ghost_cells`` given, the footprint of the ``padded`` array is
    checked against the *declared* ghost width — its extent is taken as
    ``cells + 2 * ghost_cells`` regardless of what the map says — which
    is exactly the "does the reconstruction stencil fit the padding the
    engine provides" question.  Emits DEP001 for proven violations and
    DEP004 where the proof is unavailable.
    """
    engine = engine if engine is not None else DiagnosticEngine()
    where = where or amap.kernel
    _check_effects(amap, engine, where)
    extents = dict(amap.extents)
    if ghost_cells is not None and "padded" in extents:
        extents["padded"] = LinExpr.var("cells") + 2 * int(ghost_cells)
    for access in amap.accesses:
        bounds = access_bounds(access)
        if bounds is None:
            engine.warning(
                "DEP004",
                f"{access.mode} of '{access.array}' has a non-affine row "
                "index — footprint proof unavailable",
                source=SOURCE,
                where=where,
            )
            continue
        extent = extents.get(access.array)
        if extent is None:
            continue
        lo, hi = bounds
        # Vacuous when the domain can be empty only if it is *always*
        # empty; a sometimes-empty domain still needs in-bounds rows for
        # the nonempty instances, which the endpoint bounds cover.
        if nonneg(access.upper - access.lower - 1) is False:
            continue  # provably zero iterations: no footprint
        low_ok = nonneg(lo)
        high_ok = nonneg(extent - 1 - hi)
        if low_ok is False or high_ok is False:
            engine.error(
                "DEP001",
                f"{access.mode} of '{access.array}' spans rows "
                f"[{lo}, {hi}] but the declared extent is {extent}"
                + (
                    f" (cells + 2*{ghost_cells} ghost rows)"
                    if ghost_cells is not None and access.array == "padded"
                    else ""
                ),
                source=SOURCE,
                where=where,
            )
        elif low_ok is None or high_ok is None:
            engine.warning(
                "DEP004",
                f"cannot decide whether {access.mode} of "
                f"'{access.array}' rows [{lo}, {hi}] stays inside "
                f"extent {extent}",
                source=SOURCE,
                where=where,
            )
    return engine


def _concrete_interval(
    access: Access, start: int, cells: int
) -> Optional[Tuple[int, int]]:
    """Inclusive global row interval of one access for one strip.

    The strip's kernel invocation binds ``cells``; ``"start"``-based
    arrays are windowed so local row 0 is global row ``start``,
    ``"zero"``-based arrays are passed whole.  None when the interval
    is not concrete after binding (unknown symbols remain) or the
    strip's domain is empty.
    """
    bounds = access_bounds(access)
    if bounds is None:
        return None
    env = {"cells": int(cells)}
    iterations = (access.upper - access.lower).evaluate(env)
    if iterations is None:
        return None
    if iterations <= 0:
        return (0, -1)  # empty
    lo = bounds[0].evaluate(env)
    hi = bounds[1].evaluate(env)
    if lo is None or hi is None:
        return None
    return (lo + start, hi + start)


def prove_strips(
    amap: AccessMap,
    strips: Sequence[Tuple[int, int]],
    ghost_cells: Optional[int] = None,
    *,
    where: str = "",
) -> StripProof:
    """Prove the strips of one tile plan independent under ``amap``.

    ``strips`` are the concrete ``(start, stop)`` output-row ranges of
    the plan.  The proof licenses threading iff *all* of:

    * the kernel's opcodes have known (pure) effects and every access
      is affine and in bounds (:func:`prove_footprint`);
    * no shared array row is written by two different strips (DEP002),
      including the degenerate per-iteration case where a single
      strip's loop writes one row more than once;
    * no shared array row written by one strip is read by another
      (DEP003) — threading would reorder that dependence.

    Strip-scope arrays (per-thread scratch) are exempt from the
    cross-strip checks: the dispatcher hands every strip its own
    buffer, which is precisely what the scope annotation asserts.
    """
    engine = DiagnosticEngine()
    where = where or amap.kernel
    prove_footprint(amap, ghost_cells, engine=engine, where=where)

    # iteration-level write disjointness inside one strip: a shared
    # write whose row ignores the loop variable, in a loop that can run
    # twice, writes the same row twice.
    for access in amap.accesses:
        if access.mode != "write" or access.scope != "shared":
            continue
        if access.row is None:
            continue  # already DEP004
        if access.row.coef(access.var) == 0:
            if nonneg(access.upper - access.lower - 2) is not False:
                engine.error(
                    "DEP002",
                    f"iterations of {amap.kernel} all write row "
                    f"'{access.array}[{access.row}]' — not injective in "
                    f"{access.var}",
                    source=SOURCE,
                    where=where,
                )

    # cross-strip: concrete global intervals per strip and array.
    spans: List[Dict[str, Dict[str, Tuple[int, int]]]] = []
    unknown = False
    for start, stop in strips:
        cells = int(stop) - int(start)
        per_strip: Dict[str, Dict[str, Tuple[int, int]]] = {
            "read": {},
            "write": {},
        }
        for access in amap.accesses:
            if access.scope != "shared":
                continue
            base = int(start) if amap.base_of(access.array) == "start" else 0
            interval = _concrete_interval(access, base, cells)
            if interval is None:
                unknown = True
                continue
            if interval[1] < interval[0]:
                continue  # empty domain for this strip
            table = per_strip[access.mode]
            seen = table.get(access.array)
            if seen is None:
                table[access.array] = interval
            else:
                table[access.array] = (
                    min(seen[0], interval[0]),
                    max(seen[1], interval[1]),
                )
        spans.append(per_strip)
    if unknown:
        engine.warning(
            "DEP004",
            "strip intervals are not concrete after binding the strip "
            "cell counts — cross-strip proof unavailable",
            source=SOURCE,
            where=where,
        )

    def overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        return max(a[0], b[0]) <= min(a[1], b[1])

    for i in range(len(spans)):
        for j in range(i + 1, len(spans)):
            for array, wi in spans[i]["write"].items():
                wj = spans[j]["write"].get(array)
                if wj is not None and overlap(wi, wj):
                    engine.error(
                        "DEP002",
                        f"strips {strips[i]} and {strips[j]} both write "
                        f"'{array}' rows {wi} and {wj}",
                        source=SOURCE,
                        where=where,
                    )
            for first, second in ((i, j), (j, i)):
                for array, w in spans[first]["write"].items():
                    r = spans[second]["read"].get(array)
                    if r is not None and overlap(w, r):
                        engine.error(
                            "DEP003",
                            f"strip {strips[second]} reads '{array}' rows "
                            f"{r} written by strip {strips[first]} "
                            f"(rows {w}) — threading would reorder the "
                            "dependence",
                            source=SOURCE,
                            where=where,
                        )

    diagnostics = tuple(engine.diagnostics)
    if diagnostics:
        head = diagnostics[0]
        reason = f"{head.code}: {head.message.splitlines()[0]}"
        return StripProof(False, reason, diagnostics)
    return StripProof(True, None, ())


# --------------------------------------------------------------------------
# symbolic boxes (wl_check's disjointness upgrade)
# --------------------------------------------------------------------------

#: (lowers, uppers) of a half-open box with affine sides.
SymBox = Tuple[Tuple[LinExpr, ...], Tuple[LinExpr, ...]]


def _box_symbols(boxes: Iterable[SymBox]) -> List[str]:
    names: List[str] = []
    for box in boxes:
        for side in box:
            for expr in side:
                for name in expr.symbols:
                    if name not in names:
                        names.append(name)
    return names


def _instantiate(box: SymBox, env: Mapping[str, int]):
    lowers = [lo.evaluate(env) for lo in box[0]]
    uppers = [hi.evaluate(env) for hi in box[1]]
    if any(v is None for v in lowers + uppers):
        return None
    return tuple(lowers), tuple(uppers)


def box_relation(
    one: SymBox, two: SymBox, witness_values: Sequence[int] = (0, 1, 2, 3)
) -> Tuple[str, Optional[Dict[str, int]]]:
    """Relation of two symbolic half-open boxes of equal rank.

    Returns ``("disjoint", None)`` when the boxes provably never
    intersect for any nonnegative symbol values (one is always empty,
    or some axis is separated), ``("overlap", witness)`` when a
    concrete nonnegative instantiation makes both boxes nonempty and
    intersecting (the witness assignment is returned for the
    diagnostic), and ``("unknown", None)`` otherwise — the conservative
    stay-silent verdict.
    """
    # provably empty box -> vacuously disjoint
    for box in (one, two):
        for lo, hi in zip(box[0], box[1]):
            if nonneg(lo - hi) is True:  # hi <= lo on this axis, always
                return "disjoint", None
    # separated on some axis -> disjoint
    for lo1, hi1, lo2, hi2 in zip(one[0], one[1], two[0], two[1]):
        if nonneg(lo2 - hi1) is True or nonneg(lo1 - hi2) is True:
            return "disjoint", None
    # concrete witness -> overlap (a real counterexample, no assumption)
    symbols = _box_symbols((one, two))
    for value in witness_values:
        env = {name: int(value) for name in symbols}
        a = _instantiate(one, env)
        b = _instantiate(two, env)
        if a is None or b is None:
            continue
        if any(hi <= lo for lo, hi in zip(*a)):
            continue
        if any(hi <= lo for lo, hi in zip(*b)):
            continue
        if all(
            max(lo1, lo2) < min(hi1, hi2)
            for lo1, lo2, hi1, hi2 in zip(a[0], b[0], a[1], b[1])
        ):
            return "overlap", env
    return "unknown", None
