"""A mini Fortran-90 — the paper's baseline language.

Pipeline: :mod:`lexer` / :mod:`parser` (free-form front end) →
:mod:`sema` (implicit typing, validation) → :mod:`depend` /
:mod:`autopar` (dependence analysis, ``-autopar -reduction``) →
:mod:`interp` (reference-semantics interpreter that records an
execution trace) with :mod:`openmp` mapping the runtime environment
(OMP_SCHEDULE and friends) onto the fork/join cost model.
"""

from repro.f90.api import (
    CompiledFortran,
    FortranOptions,
    compile_file,
    compile_source,
    load_program_source,
)
from repro.f90.autopar import AutoparOptions, AutoparReport, autoparallelize
from repro.f90.openmp import OpenMPSettings

__all__ = [
    "CompiledFortran",
    "FortranOptions",
    "compile_file",
    "compile_source",
    "load_program_source",
    "AutoparOptions",
    "AutoparReport",
    "autoparallelize",
    "OpenMPSettings",
]
