"""OpenMP runtime settings and their cost-model mapping.

The paper tuned the Fortran runs through environment variables and
reports the fastest combination: ``OMP_SCHEDULE=STATIC``,
``OMP_NESTED=TRUE``, ``OMP_DYNAMIC=FALSE`` — and notes the settings
"made a negligible difference".  :class:`OpenMPSettings` carries those
knobs and converts them into a :class:`ForkJoinSyncModel` for the
simulated machine: dynamic scheduling adds per-chunk dispatch cost,
nesting multiplies team-management churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sac.runtime.spinlock import ForkJoinSyncModel


@dataclass(frozen=True)
class OpenMPSettings:
    schedule: str = "STATIC"   # OMP_SCHEDULE
    nested: bool = True        # OMP_NESTED
    dynamic: bool = False      # OMP_DYNAMIC

    @classmethod
    def paper_settings(cls) -> "OpenMPSettings":
        """The fastest combination found in the paper's Section 5."""
        return cls(schedule="STATIC", nested=True, dynamic=False)

    def sync_model(self) -> ForkJoinSyncModel:
        fork = 8.0e-6
        per_thread = 3.0e-6
        if self.schedule.upper() == "DYNAMIC":
            per_thread *= 1.8   # per-chunk dispatch through a shared queue
        if self.dynamic:
            fork *= 1.3         # team-size renegotiation on entry
        penalty = 1.5 if self.nested else 1.0
        return ForkJoinSyncModel(
            fork_cost=fork, per_thread_cost=per_thread, nested_penalty=penalty
        )
