"""Interpreter for the mini Fortran-90.

Executes a :class:`ProgramUnit` with Fortran semantics: module storage
shared through ``USE``, call-by-reference arguments (host NumPy arrays
are mutated in place), adjustable array declarations whose bounds are
evaluated per call, custom lower bounds (``Q(4, 0:NX+1, 0:NY+1)``),
implicit typing, and whole-array / array-section assignments evaluated
through NumPy (these are the statements a vectorising F90 compiler
also treats as single array operations).

The interpreter doubles as the *measurement instrument* for the
OpenMP cost model: statement executions are counted, and every
auto-parallelised DO loop or whole-array statement at parallel-nesting
depth zero is recorded in an :class:`ExecutionTrace` — serial work in
between becomes serial regions.  The machine model replays that trace
with fork/join costs to produce the Fortran curves of Fig. 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FortranRuntimeError
from repro.f90 import ast
from repro.f90.sema import implicit_base, validate_program
from repro.sac.runtime.profiler import ExecutionTrace


class FArray:
    """A Fortran array: NumPy storage + per-dimension lower bounds.

    Fortran's column-major order is preserved logically by storing
    subscripts in declaration order; the host sees the same axis order
    as the declaration (``Q(4, NX, NY)`` -> shape (4, NX, NY)).
    """

    __slots__ = ("data", "lbounds")

    def __init__(self, data: np.ndarray, lbounds: Tuple[int, ...]):
        self.data = data
        self.lbounds = lbounds

    def offset(self, subscripts: Sequence[int], line: int) -> Tuple[int, ...]:
        if len(subscripts) != self.data.ndim:
            raise FortranRuntimeError(
                f"line {line}: rank-{len(subscripts)} reference to"
                f" rank-{self.data.ndim} array"
            )
        offsets = []
        for position, (subscript, lbound, extent) in enumerate(
            zip(subscripts, self.lbounds, self.data.shape)
        ):
            index = int(subscript) - lbound
            if not 0 <= index < extent:
                raise FortranRuntimeError(
                    f"line {line}: subscript {int(subscript)} out of bounds"
                    f" {lbound}:{lbound + extent - 1} in dimension {position + 1}"
                )
            offsets.append(index)
        return tuple(offsets)


_INTRINSICS_ELEMENTWISE = {
    "SQRT": np.sqrt,
    "ABS": np.abs,
    "EXP": np.exp,
    "LOG": np.log,
    "SIN": np.sin,
    "COS": np.cos,
    "DBLE": lambda value: np.asarray(value, dtype=np.float64),
    "FLOAT": lambda value: np.asarray(value, dtype=np.float64),
    "INT": lambda value: np.asarray(np.trunc(value)).astype(np.int64),
    "NINT": lambda value: np.asarray(np.rint(value)).astype(np.int64),
}

_INTRINSICS_REDUCE = {
    "SUM": np.sum,
    "MAXVAL": np.max,
    "MINVAL": np.min,
}


class _Frame:
    """One subroutine activation."""

    __slots__ = ("subroutine", "locals", "implicits")

    def __init__(self, subroutine: ast.SubroutineDef, implicits):
        self.subroutine = subroutine
        self.locals: Dict[str, object] = {}
        self.implicits = implicits


class F90Program:
    """A loaded Fortran program with live module storage."""

    def __init__(
        self,
        program: ast.ProgramUnit,
        trace: Optional[ExecutionTrace] = None,
        record_parallel: bool = True,
    ):
        validate_program(program)
        self.program = program
        self.trace = trace if trace is not None else ExecutionTrace(enabled=False)
        self.record_parallel = record_parallel
        self.module_storage: Dict[str, Dict[str, object]] = {}
        self._parallel_depth = 0
        self._stmt_count = 0
        self._serial_marker = 0
        self._expr_ops_cache: Dict[int, int] = {}
        for name, module in program.modules.items():
            self.module_storage[name] = self._init_module(module)

    # ------------------------------------------------------------------
    # module initialisation
    # ------------------------------------------------------------------

    def _init_module(self, module: ast.ModuleDef) -> Dict[str, object]:
        storage: Dict[str, object] = {}
        env = _ModuleEnv(self, storage)
        for decl in module.decls:
            if decl.parameter is not None:
                value = self._eval(decl.parameter, env)
                storage[decl.name] = _coerce_scalar(value, decl.base)
            elif decl.is_array:
                storage[decl.name] = self._allocate(decl, env)
            else:
                storage[decl.name] = _zero(decl.base)
        return storage

    def _allocate(self, decl: ast.VarDecl, env) -> FArray:
        lbounds = []
        shape = []
        for dim in decl.dims:
            lower = 1 if dim.lower is None else int(self._eval(dim.lower, env))
            upper = int(self._eval(dim.upper, env))
            if upper < lower:
                raise FortranRuntimeError(
                    f"line {decl.line}: bad bounds {lower}:{upper} for {decl.name}"
                )
            lbounds.append(lower)
            shape.append(upper - lower + 1)
        dtype = np.float64 if decl.base == "REAL" else (
            np.int64 if decl.base == "INTEGER" else np.bool_
        )
        return FArray(np.zeros(shape, dtype=dtype), tuple(lbounds))

    # ------------------------------------------------------------------
    # host API
    # ------------------------------------------------------------------

    def call(self, name: str, *args) -> None:
        """Call a subroutine; array arguments are mutated in place."""
        subroutine = self.program.subroutines.get(name.upper())
        if subroutine is None:
            raise FortranRuntimeError(f"no subroutine named {name!r}")
        if len(args) != len(subroutine.args):
            raise FortranRuntimeError(
                f"{name}: expected {len(subroutine.args)} arguments, got {len(args)}"
            )
        frame = _Frame(subroutine, subroutine.implicits)
        # bind scalar args first so adjustable array bounds can use them
        for arg_name, value in zip(subroutine.args, args):
            if not isinstance(value, np.ndarray):
                frame.locals[arg_name] = _to_fortran_scalar(value)
        for arg_name, value in zip(subroutine.args, args):
            if isinstance(value, np.ndarray):
                decl = _find_decl(arg_name, subroutine.decls)
                if decl is None or not decl.is_array:
                    raise FortranRuntimeError(
                        f"{name}: array argument {arg_name} lacks a declaration"
                    )
                frame.locals[arg_name] = self._bind_array_arg(decl, value, frame)
        # local declarations (non-arguments)
        for decl in subroutine.decls:
            if decl.name in frame.locals:
                continue
            if decl.parameter is not None:
                frame.locals[decl.name] = _coerce_scalar(
                    self._eval(decl.parameter, frame), decl.base
                )
            elif decl.is_array:
                frame.locals[decl.name] = self._allocate(decl, frame)
        self._serial_marker = self._stmt_count
        try:
            self._exec_block(frame.subroutine.body, frame)
        except _ReturnSignal:
            pass
        self._flush_serial()

    def get_module_var(self, module: str, name: str):
        """Read a module variable from the host (e.g. Vars' DT)."""
        storage = self.module_storage.get(module.upper())
        if storage is None or name.upper() not in storage:
            raise FortranRuntimeError(f"no variable {name} in module {module}")
        value = storage[name.upper()]
        return value.data if isinstance(value, FArray) else value

    def set_module_var(self, module: str, name: str, value) -> None:
        storage = self.module_storage.get(module.upper())
        if storage is None or name.upper() not in storage:
            raise FortranRuntimeError(f"no variable {name} in module {module}")
        slot = storage[name.upper()]
        if isinstance(slot, FArray):
            slot.data[...] = value
        else:
            storage[name.upper()] = _to_fortran_scalar(value)

    def _bind_array_arg(self, decl: ast.VarDecl, value: np.ndarray, frame) -> FArray:
        lbounds = []
        shape = []
        for dim in decl.dims:
            lower = 1 if dim.lower is None else int(self._eval(dim.lower, frame))
            upper = int(self._eval(dim.upper, frame))
            lbounds.append(lower)
            shape.append(upper - lower + 1)
        if tuple(shape) != value.shape:
            raise FortranRuntimeError(
                f"argument {decl.name}: declared shape {tuple(shape)} does not"
                f" match actual {value.shape}"
            )
        return FArray(value, tuple(lbounds))

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def _resolve(self, name: str, frame) -> Tuple[Optional[Dict], Optional[object]]:
        """(storage dict, value) for a name, or (None, None) if unknown."""
        if isinstance(frame, _Frame):
            if name in frame.locals:
                return frame.locals, frame.locals[name]
            for used in frame.subroutine.uses:
                storage = self.module_storage[used]
                if name in storage:
                    return storage, storage[name]
            return None, None
        # _ModuleEnv during module initialisation
        if name in frame.storage:
            return frame.storage, frame.storage[name]
        for storage in self.module_storage.values():
            if name in storage:
                return storage, storage[name]
        return None, None

    def _implicits_of(self, frame) -> List[ast.ImplicitRule]:
        if isinstance(frame, _Frame):
            rules = list(frame.implicits)
            for used in frame.subroutine.uses:
                rules.extend(self.program.modules[used].implicits)
            return rules
        return []

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _exec_block(self, statements: List[ast.Stmt], frame) -> None:
        for statement in statements:
            self._exec_stmt(statement, frame)

    def _exec_stmt(self, statement: ast.Stmt, frame) -> None:
        self._stmt_count += 1
        if isinstance(statement, ast.Assign):
            self._exec_assign(statement, frame)
        elif isinstance(statement, ast.If):
            if _truth(self._eval(statement.condition, frame), statement.line):
                self._exec_block(statement.then_body, frame)
                return
            for condition, block in statement.elif_blocks:
                if _truth(self._eval(condition, frame), statement.line):
                    self._exec_block(block, frame)
                    return
            self._exec_block(statement.else_body, frame)
        elif isinstance(statement, ast.Do):
            self._exec_do(statement, frame)
        elif isinstance(statement, ast.DoWhile):
            while _truth(self._eval(statement.condition, frame), statement.line):
                self._exec_block(statement.body, frame)
        elif isinstance(statement, ast.Call):
            args = [self._eval_call_arg(a, frame) for a in statement.args]
            self._call_internal(statement, args, frame)
        elif isinstance(statement, ast.Return):
            raise _ReturnSignal()
        elif isinstance(statement, ast.Print):
            values = [self._eval(item, frame) for item in statement.items]
            print(" ".join(str(v) for v in values))
        else:
            raise FortranRuntimeError(
                f"line {statement.line}: unknown statement {type(statement).__name__}"
            )

    def _eval_call_arg(self, expr: ast.Expr, frame):
        """Whole-array arguments pass the FArray (by reference)."""
        if isinstance(expr, ast.Ref) and not expr.has_parens:
            _, value = self._resolve(expr.name, frame)
            if isinstance(value, FArray):
                return value
        return self._eval(expr, frame)

    def _call_internal(self, statement: ast.Call, args, frame) -> None:
        subroutine = self.program.subroutines.get(statement.name)
        if subroutine is None:
            raise FortranRuntimeError(
                f"line {statement.line}: CALL to unknown subroutine {statement.name}"
            )
        inner = _Frame(subroutine, subroutine.implicits)
        for arg_name, value in zip(subroutine.args, args):
            if isinstance(value, FArray):
                decl = _find_decl(arg_name, subroutine.decls)
                if decl is not None and decl.is_array:
                    lbounds = []
                    for dim in decl.dims:
                        lower = 1 if dim.lower is None else int(self._eval(dim.lower, inner))
                        lbounds.append(lower)
                    inner.locals[arg_name] = FArray(value.data, tuple(lbounds))
                else:
                    inner.locals[arg_name] = value
            else:
                inner.locals[arg_name] = value
        for decl in subroutine.decls:
            if decl.name in inner.locals:
                continue
            if decl.parameter is not None:
                inner.locals[decl.name] = _coerce_scalar(
                    self._eval(decl.parameter, inner), decl.base
                )
            elif decl.is_array:
                inner.locals[decl.name] = self._allocate(decl, inner)
        try:
            self._exec_block(subroutine.body, inner)
        except _ReturnSignal:
            pass

    # -- DO loops -----------------------------------------------------------

    def _exec_do(self, statement: ast.Do, frame) -> None:
        lower = int(self._eval(statement.lower, frame))
        upper = int(self._eval(statement.upper, frame))
        step = 1 if statement.step is None else int(self._eval(statement.step, frame))
        if step == 0:
            raise FortranRuntimeError(f"line {statement.line}: DO step of zero")
        trips = max(0, (upper - lower + step) // step)

        record = (
            statement.parallel
            and self.record_parallel
            and self._parallel_depth == 0
            and trips > 0
        )
        if record:
            self._flush_serial()
            marker = self._stmt_count
            self._parallel_depth += 1
        storage, _ = self._resolve(statement.var, frame)
        target = storage if storage is not None else self._local_storage(frame)
        value = lower
        for _ in range(trips):
            target[statement.var] = np.int64(value)
            self._exec_block(statement.body, frame)
            value += step
        target[statement.var] = np.int64(value)
        if record:
            self._parallel_depth -= 1
            body_statements = self._stmt_count - marker
            ops = max(1.0, body_statements / trips)
            # traffic proxy: roughly one double per statement misses cache
            self.trace.record(
                "parallel_do",
                trips,
                ops,
                int(trips * ops * 8),
                label=f"do:{statement.var}@{statement.line}",
                outer_iterations=trips if _contains_do(statement.body) else 0,
            )
            self._serial_marker = self._stmt_count

    def _local_storage(self, frame) -> Dict:
        return frame.locals if isinstance(frame, _Frame) else frame.storage

    def _flush_serial(self) -> None:
        pending = self._stmt_count - self._serial_marker
        if pending > 0:
            self.trace.record("serial", pending, 1.0, 0, label="serial")
        self._serial_marker = self._stmt_count

    # -- assignment -----------------------------------------------------------

    def _exec_assign(self, statement: ast.Assign, frame) -> None:
        target = statement.target
        value = self._eval(statement.expr, frame)
        storage, existing = self._resolve(target.name, frame)

        if storage is None:
            if target.has_parens:
                raise FortranRuntimeError(
                    f"line {statement.line}: assignment to undeclared array"
                    f" {target.name}"
                )
            base = implicit_base(target.name, self._implicits_of(frame))
            self._local_storage(frame)[target.name] = _coerce_scalar(value, base)
            return

        if isinstance(existing, FArray):
            if not target.has_parens:
                # whole-array assignment: one array operation
                self._record_array_stmt(existing.data.size, statement)
                existing.data[...] = value.data if isinstance(value, FArray) else value
                return
            if any(s.is_range for s in target.subscripts):
                selector = self._section_selector(existing, target.subscripts, frame, statement.line)
                window = existing.data[selector]
                self._record_array_stmt(int(np.asarray(window).size), statement)
                existing.data[selector] = value.data if isinstance(value, FArray) else value
                return
            subscripts = [self._eval(s.index, frame) for s in target.subscripts]
            offsets = existing.offset(subscripts, statement.line)
            existing.data[offsets] = _coerce_element(value, existing.data.dtype)
            return

        # scalar rebinding
        base = (
            "REAL"
            if isinstance(existing, (float, np.floating))
            else "INTEGER"
            if isinstance(existing, (int, np.integer)) and not isinstance(existing, (bool, np.bool_))
            else "LOGICAL"
        )
        storage[target.name] = _coerce_scalar(value, base)

    def _record_array_stmt(self, elements: int, statement: ast.Assign) -> None:
        """Whole-array statements are single vector operations; the
        auto-paralleliser treats them like parallel loops."""
        if elements <= 1 or self._parallel_depth > 0 or not self.record_parallel:
            return
        ops = self._expr_ops(statement.expr)
        self._flush_serial()
        self.trace.record(
            "parallel_do", elements, float(ops), elements * 16,
            label=f"array-stmt@{statement.line}",
        )
        self._serial_marker = self._stmt_count

    def _expr_ops(self, expr: ast.Expr) -> int:
        key = id(expr)
        cached = self._expr_ops_cache.get(key)
        if cached is None:
            cached = max(
                1,
                sum(
                    1
                    for node in ast.walk_expr(expr)
                    if isinstance(node, (ast.BinOp, ast.UnOp))
                ),
            )
            self._expr_ops_cache[key] = cached
        return cached

    def _section_selector(self, array: FArray, subscripts, frame, line):
        selector = []
        for position, section in enumerate(subscripts):
            lbound = array.lbounds[position]
            extent = array.data.shape[position]
            if section.is_range:
                low = lbound if section.lower is None else int(self._eval(section.lower, frame))
                high = (
                    lbound + extent - 1
                    if section.upper is None
                    else int(self._eval(section.upper, frame))
                )
                selector.append(slice(low - lbound, high - lbound + 1))
            else:
                index = int(self._eval(section.index, frame)) - lbound
                if not 0 <= index < extent:
                    raise FortranRuntimeError(
                        f"line {line}: subscript out of bounds in section"
                    )
                selector.append(index)
        return tuple(selector)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, frame):
        if isinstance(expr, ast.IntLit):
            return np.int64(expr.value)
        if isinstance(expr, ast.RealLit):
            return np.float64(expr.value)
        if isinstance(expr, ast.LogicalLit):
            return np.bool_(expr.value)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, frame)
        if isinstance(expr, ast.UnOp):
            operand = self._eval(expr.operand, frame)
            operand = operand.data if isinstance(operand, FArray) else operand
            if expr.op == "-":
                return -operand
            if expr.op == "NOT":
                return np.logical_not(operand)
            return operand
        if isinstance(expr, ast.Ref):
            return self._eval_ref(expr, frame)
        raise FortranRuntimeError(f"unknown expression {type(expr).__name__}")

    def _eval_binop(self, expr: ast.BinOp, frame):
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        left = left.data if isinstance(left, FArray) else left
        right = right.data if isinstance(right, FArray) else right
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if _is_integer(left) and _is_integer(right):
                if np.any(np.asarray(right) == 0):
                    raise FortranRuntimeError(f"line {expr.line}: integer division by zero")
                quotient = np.trunc(np.asarray(left) / np.asarray(right)).astype(np.int64)
                return quotient[()] if quotient.ndim == 0 else quotient
            return left / right
        if op == "**":
            return left ** right
        if op == "==":
            return left == right
        if op == "/=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "AND":
            return np.logical_and(left, right)
        if op == "OR":
            return np.logical_or(left, right)
        raise FortranRuntimeError(f"line {expr.line}: unknown operator {op!r}")

    def _eval_ref(self, expr: ast.Ref, frame):
        storage, value = self._resolve(expr.name, frame)
        if storage is not None:
            if isinstance(value, FArray):
                if not expr.has_parens:
                    return value
                if any(s.is_range for s in expr.subscripts):
                    selector = self._section_selector(value, expr.subscripts, frame, expr.line)
                    return value.data[selector]
                subscripts = [self._eval(s.index, frame) for s in expr.subscripts]
                return value.data[value.offset(subscripts, expr.line)]
            if expr.has_parens:
                raise FortranRuntimeError(
                    f"line {expr.line}: {expr.name} is not an array or function"
                )
            return value
        if expr.has_parens:
            return self._eval_intrinsic(expr, frame)
        raise FortranRuntimeError(
            f"line {expr.line}: {expr.name} referenced before assignment"
        )

    def _eval_intrinsic(self, expr: ast.Ref, frame):
        name = expr.name
        args = []
        for section in expr.subscripts:
            if section.is_range or section.index is None:
                raise FortranRuntimeError(
                    f"line {expr.line}: bad argument to {name}"
                )
            value = self._eval(section.index, frame)
            args.append(value.data if isinstance(value, FArray) else value)
        if name in _INTRINSICS_ELEMENTWISE and len(args) == 1:
            return _INTRINSICS_ELEMENTWISE[name](args[0])
        if name in _INTRINSICS_REDUCE and len(args) == 1:
            return _INTRINSICS_REDUCE[name](args[0])
        if name == "MAX" and len(args) >= 2:
            result = args[0]
            for arg in args[1:]:
                result = np.maximum(result, arg)
            return result
        if name == "MIN" and len(args) >= 2:
            result = args[0]
            for arg in args[1:]:
                result = np.minimum(result, arg)
            return result
        if name == "MOD" and len(args) == 2:
            return np.fmod(args[0], args[1])
        if name == "SIZE" and len(args) == 1:
            return np.int64(np.asarray(args[0]).size)
        raise FortranRuntimeError(
            f"line {expr.line}: unknown function or unbound array {name!r}"
        )


class _ModuleEnv:
    """Environment used while initialising one module's storage."""

    __slots__ = ("program", "storage")

    def __init__(self, program: F90Program, storage: Dict[str, object]):
        self.program = program
        self.storage = storage


class _ReturnSignal(Exception):
    pass


# -- helpers -----------------------------------------------------------------


def _find_decl(name: str, decls: List[ast.VarDecl]) -> Optional[ast.VarDecl]:
    for decl in decls:
        if decl.name == name:
            return decl
    return None


def _zero(base: str):
    if base == "REAL":
        return np.float64(0.0)
    if base == "INTEGER":
        return np.int64(0)
    return np.bool_(False)


def _coerce_scalar(value, base: str):
    array = np.asarray(value.data if isinstance(value, FArray) else value)
    if array.ndim != 0:
        raise FortranRuntimeError("cannot assign an array to a scalar")
    if base == "REAL":
        return np.float64(array)
    if base == "INTEGER":
        return np.int64(np.trunc(array))
    return np.bool_(array)


def _coerce_element(value, dtype):
    array = np.asarray(value)
    if array.ndim != 0:
        raise FortranRuntimeError("cannot assign an array to an array element")
    if np.issubdtype(dtype, np.integer):
        return np.int64(np.trunc(array))
    return array.astype(dtype, copy=False)[()]


def _to_fortran_scalar(value):
    if isinstance(value, (bool, np.bool_)):
        return np.bool_(value)
    if isinstance(value, (int, np.integer)):
        return np.int64(value)
    return np.float64(value)


def _truth(value, line: int) -> bool:
    array = np.asarray(value)
    if array.ndim != 0:
        raise FortranRuntimeError(f"line {line}: condition must be scalar")
    return bool(array)


def _is_integer(value) -> bool:
    return np.issubdtype(np.asarray(value).dtype, np.integer)


def _contains_do(statements: List[ast.Stmt]) -> bool:
    return any(isinstance(s, ast.Do) for s in ast.walk_stmts(statements))
