"""Parser for the mini Fortran-90 (free form).

Covers the constructs the paper's code uses: MODULEs with
declarations and PARAMETERs, SUBROUTINEs with ``USE`` and ``IMPLICIT
REAL*8 (A-H,O-Z)``, DO / DO WHILE loops, block and logical IFs, CALL,
whole-array assignments and array sections, and the classic dotted
operators.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FortranSyntaxError
from repro.f90 import ast
from repro.f90.lexer import LogicalLine, Token, logical_lines

_TYPE_KEYWORDS = {"REAL", "INTEGER", "LOGICAL", "DOUBLE"}


class _LineParser:
    """Token cursor over one logical line."""

    def __init__(self, line: LogicalLine):
        self.tokens = line.tokens
        self.line = line.line
        self.position = 0

    @property
    def current(self) -> Token:
        return self.tokens[min(self.position, len(self.tokens) - 1)]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    def accept_ident(self, text: str) -> bool:
        if self.current.is_ident(text):
            self.advance()
            return True
        return False

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise FortranSyntaxError(
                f"expected {text!r}, found {self.current.text!r}", self.line
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise FortranSyntaxError(
                f"expected identifier, found {self.current.text!r}", self.line
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind == "eof"

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.current.is_op("OR"):
            self.advance()
            left = ast.BinOp("OR", left, self._parse_and(), self.line)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.current.is_op("AND"):
            self.advance()
            left = ast.BinOp("AND", left, self._parse_not(), self.line)
        return left

    def _parse_not(self) -> ast.Expr:
        if self.current.is_op("NOT"):
            self.advance()
            return ast.UnOp("NOT", self._parse_not(), self.line)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        for op in ("==", "/=", "<=", ">=", "<", ">"):
            if self.current.is_op(op):
                self.advance()
                return ast.BinOp(op, left, self._parse_additive(), self.line)
        return left

    def _parse_additive(self) -> ast.Expr:
        # leading sign
        if self.current.is_op("-"):
            self.advance()
            left: ast.Expr = ast.UnOp("-", self._parse_multiplicative(), self.line)
        elif self.current.is_op("+"):
            self.advance()
            left = self._parse_multiplicative()
        else:
            left = self._parse_multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().text
            left = ast.BinOp(op, left, self._parse_multiplicative(), self.line)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_power()
        while self.current.is_op("*") or self.current.is_op("/"):
            op = self.advance().text
            left = ast.BinOp(op, left, self._parse_power(), self.line)
        return left

    def _parse_power(self) -> ast.Expr:
        base = self._parse_unary()
        if self.current.is_op("**"):
            self.advance()
            return ast.BinOp("**", base, self._parse_power(), self.line)  # right assoc
        return base

    def _parse_unary(self) -> ast.Expr:
        if self.current.is_op("-"):
            self.advance()
            return ast.UnOp("-", self._parse_unary(), self.line)
        if self.current.is_op("+"):
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.text), self.line)
        if token.kind == "real":
            self.advance()
            return ast.RealLit(float(token.text), self.line)
        if token.kind == "ident" and token.text in ("TRUE", "FALSE"):
            self.advance()
            return ast.LogicalLit(token.text == "TRUE", self.line)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind == "ident":
            return self.parse_ref()
        raise FortranSyntaxError(f"expected an expression, found {token.text!r}", self.line)

    def parse_ref(self) -> ast.Ref:
        name = self.expect_ident().text
        subscripts: List[ast.Section] = []
        has_parens = False
        if self.accept_op("("):
            has_parens = True
            if not self.current.is_op(")"):
                subscripts.append(self._parse_section())
                while self.accept_op(","):
                    subscripts.append(self._parse_section())
            self.expect_op(")")
        return ast.Ref(name, subscripts, has_parens, self.line)

    def _parse_section(self) -> ast.Section:
        if self.current.is_op(":"):
            self.advance()
            if self.current.is_op(",") or self.current.is_op(")"):
                return ast.Section(is_range=True)
            return ast.Section(upper=self.parse_expr(), is_range=True)
        first = self.parse_expr()
        if self.accept_op(":"):
            if self.current.is_op(",") or self.current.is_op(")"):
                return ast.Section(lower=first, is_range=True)
            return ast.Section(lower=first, upper=self.parse_expr(), is_range=True)
        return ast.Section(index=first)


class Parser:
    """Parses a whole source file into a :class:`ProgramUnit`."""

    def __init__(self, source: str):
        self.lines = logical_lines(source)
        self.position = 0

    def _current(self) -> Optional[_LineParser]:
        if self.position >= len(self.lines):
            return None
        return _LineParser(self.lines[self.position])

    def _advance(self) -> _LineParser:
        line = self._current()
        if line is None:
            raise FortranSyntaxError("unexpected end of file")
        self.position += 1
        return line

    def parse(self) -> ast.ProgramUnit:
        program = ast.ProgramUnit()
        while self.position < len(self.lines):
            line = _LineParser(self.lines[self.position])
            if line.current.is_ident("MODULE"):
                module = self._parse_module()
                program.modules[module.name] = module
            elif line.current.is_ident("SUBROUTINE"):
                subroutine = self._parse_subroutine()
                program.subroutines[subroutine.name] = subroutine
            else:
                raise FortranSyntaxError(
                    f"expected MODULE or SUBROUTINE, found {line.current.text!r}",
                    line.line,
                )
        return program

    # -- units ---------------------------------------------------------------

    def _parse_module(self) -> ast.ModuleDef:
        header = self._advance()
        header.expect_ident()  # MODULE
        name = header.expect_ident().text
        module = ast.ModuleDef(name)
        while True:
            line = self._advance()
            if line.current.is_ident("END"):
                break
            if line.current.is_ident("IMPLICIT"):
                rule = _parse_implicit(line)
                if rule is not None:
                    module.implicits.append(rule)
                continue
            if line.current.is_ident("PARAMETER"):
                _parse_parameter_stmt(line, module.decls)
                continue
            if line.current.kind == "ident" and line.current.text in _TYPE_KEYWORDS:
                module.decls.extend(_parse_declaration(line))
                continue
            raise FortranSyntaxError(
                f"unexpected statement in module: {line.current.text!r}", line.line
            )
        return module

    def _parse_subroutine(self) -> ast.SubroutineDef:
        header = self._advance()
        header.expect_ident()  # SUBROUTINE
        name = header.expect_ident().text
        args: List[str] = []
        if header.accept_op("("):
            if not header.current.is_op(")"):
                args.append(header.expect_ident().text)
                while header.accept_op(","):
                    args.append(header.expect_ident().text)
            header.expect_op(")")
        subroutine = ast.SubroutineDef(name, args)

        # specification part
        while True:
            line = self._current()
            if line is None:
                raise FortranSyntaxError(f"unterminated subroutine {name}")
            if line.current.is_ident("USE"):
                self._advance()
                line.expect_ident()
                subroutine.uses.append(line.expect_ident().text)
                continue
            if line.current.is_ident("IMPLICIT"):
                self._advance()
                rule = _parse_implicit(line)
                if rule is not None:
                    subroutine.implicits.append(rule)
                continue
            if line.current.is_ident("PARAMETER"):
                self._advance()
                _parse_parameter_stmt(line, subroutine.decls)
                continue
            if (
                line.current.kind == "ident"
                and line.current.text in _TYPE_KEYWORDS
                and not line.peek().is_op("=")
            ):
                self._advance()
                subroutine.decls.extend(_parse_declaration(line))
                continue
            break

        subroutine.body = self._parse_block(("END",))
        end_line = self._advance()
        end_line.expect_ident()  # END
        return subroutine

    # -- statements ------------------------------------------------------------

    def _parse_block(self, terminators: Tuple[str, ...]) -> List[ast.Stmt]:
        body: List[ast.Stmt] = []
        while True:
            line = self._current()
            if line is None:
                raise FortranSyntaxError("unexpected end of file in block")
            first = line.current.text
            if first in terminators or (
                first == "END" and line.peek().kind == "ident"
                and f"END{line.peek().text}" in terminators
            ) or (first in ("ENDDO", "ENDIF") and first in terminators):
                return body
            if first == "ELSE" and "ELSE" in terminators:
                return body
            body.append(self._parse_stmt())

    def _parse_stmt(self) -> ast.Stmt:
        line = self._advance()
        token = line.current
        if token.is_ident("DO"):
            return self._parse_do(line)
        if token.is_ident("IF"):
            return self._parse_if(line)
        if token.is_ident("CALL"):
            line.advance()
            ref = line.parse_ref()
            return ast.Call(ref.name, [s.index for s in ref.subscripts], line.line)
        if token.is_ident("RETURN"):
            return ast.Return(line.line)
        if token.is_ident("PRINT"):
            line.advance()
            line.expect_op("*")
            items: List[ast.Expr] = []
            while line.accept_op(","):
                items.append(line.parse_expr())
            return ast.Print(items, line.line)
        if token.is_ident("CYCLE") or token.is_ident("EXIT"):
            raise FortranSyntaxError(
                f"{token.text} is not supported by this subset", line.line
            )
        # assignment
        target = line.parse_ref()
        line.expect_op("=")
        expr = line.parse_expr()
        if not line.at_end():
            raise FortranSyntaxError(
                f"trailing tokens after assignment: {line.current.text!r}", line.line
            )
        return ast.Assign(target, expr, line.line)

    def _parse_do(self, line: _LineParser) -> ast.Stmt:
        line.advance()  # DO
        if line.current.is_ident("WHILE"):
            line.advance()
            line.expect_op("(")
            condition = line.parse_expr()
            line.expect_op(")")
            body = self._parse_block(("ENDDO",))
            self._expect_end(("DO",))
            return ast.DoWhile(condition, body, line.line)
        var = line.expect_ident().text
        line.expect_op("=")
        lower = line.parse_expr()
        line.expect_op(",")
        upper = line.parse_expr()
        step = None
        if line.accept_op(","):
            step = line.parse_expr()
        body = self._parse_block(("ENDDO",))
        self._expect_end(("DO",))
        return ast.Do(var, lower, upper, step, body, line.line)

    def _parse_if(self, line: _LineParser) -> ast.Stmt:
        line.advance()  # IF
        line.expect_op("(")
        condition = line.parse_expr()
        line.expect_op(")")
        if line.current.is_ident("THEN"):
            node = ast.If(condition, line=line.line)
            node.then_body = self._parse_block(("ELSEIF", "ELSE", "ENDIF"))
            while True:
                peek = self._current()
                assert peek is not None
                if peek.current.is_ident("ELSEIF") or (
                    peek.current.is_ident("ELSE") and peek.peek().is_ident("IF")
                ):
                    elif_line = self._advance()
                    elif_line.advance()  # ELSEIF or ELSE
                    if elif_line.current.is_ident("IF"):
                        elif_line.advance()
                    elif_line.expect_op("(")
                    elif_condition = elif_line.parse_expr()
                    elif_line.expect_op(")")
                    if not elif_line.current.is_ident("THEN"):
                        raise FortranSyntaxError("ELSE IF needs THEN", elif_line.line)
                    block = self._parse_block(("ELSEIF", "ELSE", "ENDIF"))
                    node.elif_blocks.append((elif_condition, block))
                    continue
                if peek.current.is_ident("ELSE"):
                    self._advance()
                    node.else_body = self._parse_block(("ENDIF",))
                break
            self._expect_end(("IF",))
            return node
        # logical IF: single statement on the same line
        rest_tokens = line.tokens[line.position:]
        inner = _LineParser(LogicalLine(rest_tokens, line.line))
        saved_lines, saved_position = self.lines, self.position
        try:
            # reuse the statement parser on the remainder of this line
            self.lines = [LogicalLine(rest_tokens, line.line)]
            self.position = 0
            statement = self._parse_stmt()
        finally:
            self.lines, self.position = saved_lines, saved_position
        del inner
        return ast.If(condition, [statement], [], [], line.line)

    def _expect_end(self, what: Tuple[str, ...]) -> None:
        line = self._advance()
        first = line.advance().text
        if first in tuple(f"END{w}" for w in what):
            return
        if first == "END":
            if line.current.kind == "ident" and line.current.text in what:
                return
            if line.at_end():
                return
        raise FortranSyntaxError(f"expected END {what[0]}, found {first!r}", line.line)


# -- declarations ------------------------------------------------------------


def _parse_implicit(line: _LineParser) -> Optional[ast.ImplicitRule]:
    line.advance()  # IMPLICIT
    if line.current.is_ident("NONE"):
        return None
    base = _parse_type_spec(line)
    line.expect_op("(")
    ranges: List[Tuple[str, str]] = []
    while True:
        start = line.expect_ident().text
        if line.accept_op("-"):
            stop = line.expect_ident().text
        else:
            stop = start
        ranges.append((start[0], stop[0]))
        if not line.accept_op(","):
            break
    line.expect_op(")")
    return ast.ImplicitRule(base, ranges)


def _parse_type_spec(line: _LineParser) -> str:
    token = line.expect_ident()
    base = token.text
    if base == "DOUBLE":
        if not line.current.is_ident("PRECISION"):
            raise FortranSyntaxError("DOUBLE must be DOUBLE PRECISION", line.line)
        line.advance()
        return "REAL"
    if base == "REAL":
        if line.accept_op("*"):
            line.advance()  # kind digits (8)
        elif line.current.is_op("("):
            line.advance()
            while not line.current.is_op(")"):
                line.advance()
            line.expect_op(")")
        return "REAL"
    if base == "INTEGER":
        if line.accept_op("*"):
            line.advance()
        return "INTEGER"
    if base == "LOGICAL":
        return "LOGICAL"
    raise FortranSyntaxError(f"unknown type {base!r}", line.line)


def _parse_declaration(line: _LineParser) -> List[ast.VarDecl]:
    base = _parse_type_spec(line)
    is_parameter = False
    while line.accept_op(","):
        attribute = line.expect_ident().text
        if attribute == "PARAMETER":
            is_parameter = True
        elif attribute in ("DIMENSION",):
            raise FortranSyntaxError(
                "DIMENSION attribute is not supported; put dims on the name",
                line.line,
            )
        # other attributes (INTENT, SAVE, ...) are accepted and ignored
        if line.current.is_op("("):
            depth = 0
            while True:
                if line.current.is_op("("):
                    depth += 1
                elif line.current.is_op(")"):
                    depth -= 1
                    if depth == 0:
                        line.advance()
                        break
                line.advance()
    line.accept_op("::")
    decls: List[ast.VarDecl] = []
    while True:
        name = line.expect_ident().text
        dims: List[ast.Dim] = []
        if line.accept_op("("):
            while True:
                dims.append(_parse_dim(line))
                if not line.accept_op(","):
                    break
            line.expect_op(")")
        parameter_value: Optional[ast.Expr] = None
        if line.accept_op("="):
            parameter_value = line.parse_expr()
            if not is_parameter:
                is_parameter = True  # initialised module constant
        decls.append(ast.VarDecl(name, base, dims, parameter_value, line.line))
        if not line.accept_op(","):
            break
    return decls


def _parse_dim(line: _LineParser) -> ast.Dim:
    first = line.parse_expr()
    if line.accept_op(":"):
        return ast.Dim(first, line.parse_expr())
    return ast.Dim(None, first)


def _parse_parameter_stmt(line: _LineParser, decls: List[ast.VarDecl]) -> None:
    """F77-style ``PARAMETER (Gam = 1.4d0, CFL = 0.5d0)``."""
    line.advance()  # PARAMETER
    line.expect_op("(")
    while True:
        name = line.expect_ident().text
        line.expect_op("=")
        value = line.parse_expr()
        decls.append(ast.VarDecl(name, "REAL", [], value, line.line))
        if not line.accept_op(","):
            break
    line.expect_op(")")


def parse_program(source: str) -> ast.ProgramUnit:
    return Parser(source).parse()
