"""Lexer for the mini Fortran-90.

Fortran is line-oriented: the lexer first assembles *logical lines*
(stripping ``!`` comments, joining ``&`` continuations, splitting on
``;``), then tokenises each line.  Identifiers and keywords are
case-insensitive and normalised to upper case; ``1.4d0``-style double
literals and the dotted operators (``.AND.``, ``.LT.``, ...) are
handled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FortranSyntaxError

DOT_OPERATORS = {
    ".AND.": "AND",
    ".OR.": "OR",
    ".NOT.": "NOT",
    ".EQ.": "==",
    ".NE.": "/=",
    ".LT.": "<",
    ".LE.": "<=",
    ".GT.": ">",
    ".GE.": ">=",
    ".TRUE.": "TRUE",
    ".FALSE.": "FALSE",
}

MULTI_OPERATORS = ["::", "**", "==", "/=", "<=", ">=", "=>"]
SINGLE_OPERATORS = set("+-*/=(),:<>%")


@dataclass(frozen=True)
class Token:
    kind: str  # ident | int | real | op | string | eof
    text: str
    line: int

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_ident(self, text: str) -> bool:
        return self.kind == "ident" and self.text == text


@dataclass
class LogicalLine:
    """One statement-bearing line with its original line number."""

    tokens: List[Token]
    line: int


def logical_lines(source: str) -> List[LogicalLine]:
    """Assemble logical lines: strip comments, join & continuations."""
    raw_lines = source.splitlines()
    assembled: List[Tuple[str, int]] = []
    buffer = ""
    buffer_line = 0
    for number, raw in enumerate(raw_lines, start=1):
        text = _strip_comment(raw)
        stripped = text.strip()
        if not stripped:
            continue
        if buffer:
            if stripped.startswith("&"):
                stripped = stripped[1:].lstrip()
            buffer += " " + stripped
        else:
            buffer = stripped
            buffer_line = number
        if buffer.rstrip().endswith("&"):
            buffer = buffer.rstrip()[:-1]
            continue
        for piece in _split_semicolons(buffer):
            if piece.strip():
                assembled.append((piece.strip(), buffer_line))
        buffer = ""
    if buffer.strip():
        assembled.append((buffer.strip(), buffer_line))

    lines = []
    for text, number in assembled:
        tokens = _tokenize_line(text, number)
        if tokens:
            tokens.append(Token("eof", "", number))
            lines.append(LogicalLine(tokens, number))
    return lines


def _strip_comment(text: str) -> str:
    in_string = False
    for position, char in enumerate(text):
        if char == "'":
            in_string = not in_string
        elif char == "!" and not in_string:
            return text[:position]
    return text


def _split_semicolons(text: str) -> List[str]:
    pieces = []
    current = []
    in_string = False
    for char in text:
        if char == "'":
            in_string = not in_string
        if char == ";" and not in_string:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    pieces.append("".join(current))
    return pieces


def _tokenize_line(text: str, line: int) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char in " \t":
            position += 1
            continue
        if char == "'":
            end = text.find("'", position + 1)
            if end < 0:
                raise FortranSyntaxError("unterminated string literal", line)
            tokens.append(Token("string", text[position + 1 : end], line))
            position = end + 1
            continue
        if char == ".":
            matched = False
            upper = text[position:].upper()
            for dotted, replacement in DOT_OPERATORS.items():
                if upper.startswith(dotted):
                    kind = "op"
                    if replacement in ("TRUE", "FALSE"):
                        kind = "ident"
                    tokens.append(Token(kind, replacement, line))
                    position += len(dotted)
                    matched = True
                    break
            if matched:
                continue
            if position + 1 < length and text[position + 1].isdigit():
                token, position = _number(text, position, line)
                tokens.append(token)
                continue
            raise FortranSyntaxError(f"unexpected '.' in {text!r}", line)
        if char.isdigit():
            token, position = _number(text, position, line)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            tokens.append(Token("ident", text[position:end].upper(), line))
            position = end
            continue
        matched = False
        for operator in MULTI_OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token("op", operator, line))
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in SINGLE_OPERATORS:
            tokens.append(Token("op", char, line))
            position += 1
            continue
        raise FortranSyntaxError(f"unexpected character {char!r}", line)
    return tokens


def _number(text: str, position: int, line: int) -> Tuple[Token, int]:
    """Scan 123, 1.5, 1.4D0, 1.E-3, 0.5_8 style numbers."""
    length = len(text)
    end = position
    is_real = False
    while end < length and text[end].isdigit():
        end += 1
    if end < length and text[end] == ".":
        # avoid eating '.AND.' after '1': only a real if next is digit/exp/D
        probe = end + 1
        if probe >= length or text[probe].isdigit() or text[probe] in "dDeE \t)+-*/,":
            follows = text[probe:probe + 4].upper()
            if not any(follows.startswith(op[1:]) for op in DOT_OPERATORS):
                is_real = True
                end = probe
                while end < length and text[end].isdigit():
                    end += 1
    if end < length and text[end] in "dDeE":
        probe = end + 1
        if probe < length and text[probe] in "+-":
            probe += 1
        if probe < length and text[probe].isdigit():
            is_real = True
            end = probe
            while end < length and text[end].isdigit():
                end += 1
    literal = text[position:end]
    kind = "real" if is_real else "int"
    normalised = literal.upper().replace("D", "E") if is_real else literal
    return Token(kind, normalised, line), end
