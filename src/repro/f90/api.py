"""Public API of the mini Fortran-90 pipeline.

Typical use::

    from repro.f90 import api

    program = api.compile_file("euler2d.f90")   # parse + autopar
    program.call("STEP", q, nx, ny, dt, dx, dy, e0, e1, qin_left, qin_bottom)

Arrays are passed by reference (the NumPy buffer is mutated); scalars
are passed by value — a documented subset restriction (use length-1
arrays for scalar outputs, or module variables like the paper's
``DT``).
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FortranError
from repro.f90.autopar import AutoparOptions, AutoparReport, autoparallelize
from repro.f90.interp import F90Program
from repro.f90.openmp import OpenMPSettings
from repro.f90.parser import parse_program
from repro.sac.runtime.profiler import ExecutionTrace


@dataclass
class FortranOptions:
    """Compiler-flag equivalents of the paper's f90 invocation
    (``-autopar -parallel -reduction -O3 -fast``)."""

    autopar: bool = True
    reductions: bool = True
    openmp: OpenMPSettings = field(default_factory=OpenMPSettings.paper_settings)
    trace: bool = False
    #: cross-check autopar's verdicts against the independent
    #: repro.analysis.f90_races checker at compile time (hard error on
    #: a parallel-but-racy annotation)
    cross_check: bool = False


class CompiledFortran:
    """A parsed, analysed, runnable Fortran program."""

    def __init__(
        self,
        program: F90Program,
        report: AutoparReport,
        options: FortranOptions,
        unit=None,
    ):
        self.program = program
        self.autopar_report = report
        self.options = options
        #: the annotated AST (:class:`repro.f90.ast.ProgramUnit`)
        self.unit = unit if unit is not None else program.program

    def lint(self, engine=None):
        """Run the autopar cross-checker; returns a DiagnosticEngine."""
        from repro.analysis.f90_races import cross_check_autopar

        return cross_check_autopar(self.unit, engine=engine)

    @property
    def trace(self) -> ExecutionTrace:
        return self.program.trace

    def call(self, name: str, *args) -> None:
        self.program.call(name, *args)

    def get(self, module: str, name: str):
        return self.program.get_module_var(module, name)

    def set(self, module: str, name: str, value) -> None:
        self.program.set_module_var(module, name, value)

    def reset_trace(self) -> None:
        self.program.trace.clear()


def compile_source(source: str, options: Optional[FortranOptions] = None) -> CompiledFortran:
    options = options or FortranOptions()
    unit = parse_program(source)
    report = autoparallelize(
        unit, AutoparOptions(enabled=options.autopar, reductions=options.reductions)
    )
    trace = ExecutionTrace(enabled=options.trace)
    program = F90Program(unit, trace=trace, record_parallel=options.autopar)
    compiled = CompiledFortran(program, report, options, unit=unit)
    if options.cross_check:
        compiled.lint().raise_if_errors("autopar cross-check")
    return compiled


def compile_file(name: str, options: Optional[FortranOptions] = None) -> CompiledFortran:
    return compile_source(load_program_source(name), options)


def load_program_source(name: str) -> str:
    """Source of a bundled program (``repro/f90/programs``) or a path."""
    try:
        resource = importlib.resources.files("repro.f90") / "programs" / name
        if resource.is_file():
            return resource.read_text()
    except (ModuleNotFoundError, FileNotFoundError, TypeError):
        pass
    try:
        with open(name, "r") as handle:
            return handle.read()
    except OSError as error:
        raise FortranError(f"cannot load Fortran program {name!r}: {error}") from None
