"""The auto-paralleliser (Sun Studio's ``-autopar -reduction``).

Walks every subroutine, runs the dependence analysis on each DO loop
and annotates the AST in place: ``parallel``, ``reduction_vars``,
``private_vars`` and, when serial, a human-readable ``serial_reason``
(surfaced by tests and by the ablation benchmark).

Reduction loops (``EVmax = MAX(EV, EVmax)`` in the paper's GetDT) are
only parallelised when ``reductions`` is on — the paper's compiler
line passes ``-reduction`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.f90 import ast
from repro.f90.depend import analyze_loop


@dataclass
class AutoparOptions:
    enabled: bool = True        # -autopar
    reductions: bool = True     # -reduction


@dataclass
class AutoparReport:
    """Which loops were parallelised and why the others were not."""

    parallel_loops: List[str] = field(default_factory=list)
    serial_loops: Dict[str, str] = field(default_factory=dict)


def autoparallelize(
    program: ast.ProgramUnit, options: Optional[AutoparOptions] = None
) -> AutoparReport:
    """Annotate every DO loop in the program; returns the report."""
    options = options if options is not None else AutoparOptions()
    report = AutoparReport()
    for subroutine in program.subroutines.values():
        _walk(subroutine.body, subroutine.name, options, report)
    return report


def _walk(statements: List[ast.Stmt], where: str, options: AutoparOptions, report: AutoparReport) -> None:
    for statement in statements:
        if isinstance(statement, ast.Do):
            _annotate(statement, where, options, report)
            _walk(statement.body, where, options, report)
        elif isinstance(statement, ast.DoWhile):
            _walk(statement.body, where, options, report)
        elif isinstance(statement, ast.If):
            _walk(statement.then_body, where, options, report)
            for _, block in statement.elif_blocks:
                _walk(block, where, options, report)
            _walk(statement.else_body, where, options, report)


def _annotate(loop: ast.Do, where: str, options: AutoparOptions, report: AutoparReport) -> None:
    label = f"{where}:{loop.var}@{loop.line}"
    if not options.enabled:
        loop.parallel = False
        loop.serial_reason = "auto-parallelisation disabled"
        report.serial_loops[label] = loop.serial_reason
        return
    analysis = analyze_loop(loop)
    if analysis.parallel and analysis.reduction_vars and not options.reductions:
        loop.parallel = False
        loop.serial_reason = "reduction loop (enable -reduction)"
        report.serial_loops[label] = loop.serial_reason
        return
    loop.parallel = analysis.parallel
    loop.reduction_vars = analysis.reduction_vars
    loop.private_vars = analysis.private_vars
    loop.serial_reason = analysis.reason
    if analysis.parallel:
        report.parallel_loops.append(label)
    else:
        report.serial_loops[label] = analysis.reason
