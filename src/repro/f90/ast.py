"""AST for the mini Fortran-90."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


# -- expressions -----------------------------------------------------------


class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class RealLit(Expr):
    value: float
    line: int = 0


@dataclass
class LogicalLit(Expr):
    value: bool
    line: int = 0


@dataclass
class Section:
    """One subscript: an index expression, a range, or ':' (full extent)."""

    index: Optional[Expr] = None          # element subscript
    lower: Optional[Expr] = None          # section lower bound (or None = lbound)
    upper: Optional[Expr] = None          # section upper bound (or None = ubound)
    is_range: bool = False                # True for lo:hi / ':' forms


@dataclass
class Ref(Expr):
    """NAME or NAME(subscripts) — array element, section, or function call
    (disambiguated at interpretation time against the symbol table)."""

    name: str
    subscripts: List[Section] = field(default_factory=list)
    has_parens: bool = False
    line: int = 0


@dataclass
class BinOp(Expr):
    op: str  # + - * / ** == /= < <= > >= AND OR
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class UnOp(Expr):
    op: str  # '-' | 'NOT' | '+'
    operand: Expr
    line: int = 0


# -- statements ------------------------------------------------------------


class Stmt:
    line: int = 0


@dataclass
class Assign(Stmt):
    target: Ref
    expr: Expr
    line: int = 0


@dataclass
class If(Stmt):
    condition: Expr
    then_body: List[Stmt] = field(default_factory=list)
    elif_blocks: List[Tuple[Expr, List[Stmt]]] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Do(Stmt):
    var: str
    lower: Expr
    upper: Expr
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0
    # set by the auto-paralleliser:
    parallel: bool = False
    reduction_vars: Dict[str, str] = field(default_factory=dict)  # var -> MAX/MIN/+/*
    private_vars: List[str] = field(default_factory=list)
    serial_reason: str = ""


@dataclass
class DoWhile(Stmt):
    condition: Expr
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Call(Stmt):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Return(Stmt):
    line: int = 0


@dataclass
class Print(Stmt):
    items: List[Expr] = field(default_factory=list)
    line: int = 0


# -- declarations ----------------------------------------------------------


@dataclass
class Dim:
    """One array dimension with (possibly implicit 1) lower bound."""

    lower: Optional[Expr]  # None -> 1
    upper: Expr


@dataclass
class VarDecl:
    name: str
    base: str  # REAL | INTEGER | LOGICAL
    dims: List[Dim] = field(default_factory=list)
    parameter: Optional[Expr] = None
    line: int = 0

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class ImplicitRule:
    """IMPLICIT REAL*8 (A-H,O-Z) — letter ranges mapped to a base type."""

    base: str
    ranges: List[Tuple[str, str]] = field(default_factory=list)

    def covers(self, letter: str) -> bool:
        return any(low <= letter <= high for low, high in self.ranges)


@dataclass
class ModuleDef:
    name: str
    decls: List[VarDecl] = field(default_factory=list)
    implicits: List[ImplicitRule] = field(default_factory=list)


@dataclass
class SubroutineDef:
    name: str
    args: List[str] = field(default_factory=list)
    uses: List[str] = field(default_factory=list)
    decls: List[VarDecl] = field(default_factory=list)
    implicits: List[ImplicitRule] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ProgramUnit:
    """A parsed source file: modules + subroutines."""

    modules: Dict[str, ModuleDef] = field(default_factory=dict)
    subroutines: Dict[str, SubroutineDef] = field(default_factory=dict)


def walk_expr(expr: Expr):
    yield expr
    if isinstance(expr, Ref):
        for section in expr.subscripts:
            for child in (section.index, section.lower, section.upper):
                if child is not None:
                    yield from walk_expr(child)
    elif isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)


def walk_stmts(statements: List[Stmt]):
    for statement in statements:
        yield statement
        if isinstance(statement, If):
            yield from walk_stmts(statement.then_body)
            for _, block in statement.elif_blocks:
                yield from walk_stmts(block)
            yield from walk_stmts(statement.else_body)
        elif isinstance(statement, Do):
            yield from walk_stmts(statement.body)
        elif isinstance(statement, DoWhile):
            yield from walk_stmts(statement.body)
