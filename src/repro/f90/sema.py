"""Light semantic layer: implicit typing and program validation.

The paper's code leans on ``IMPLICIT REAL*8 (A-H,O-Z)`` — undeclared
names get their type from their first letter.  The default Fortran
rule (I-N integer, everything else real) applies underneath any
explicit IMPLICIT statements.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FortranSemanticError
from repro.f90 import ast


def implicit_base(name: str, rules: List[ast.ImplicitRule]) -> str:
    """Base type of an undeclared name under the active IMPLICIT rules."""
    letter = name[0].upper()
    for rule in rules:
        if rule.covers(letter):
            return rule.base
    return "INTEGER" if "I" <= letter <= "N" else "REAL"


def validate_program(program: ast.ProgramUnit) -> None:
    """Cross-unit checks: USE targets exist, no module/subroutine clashes."""
    for subroutine in program.subroutines.values():
        for used in subroutine.uses:
            if used not in program.modules:
                raise FortranSemanticError(
                    f"subroutine {subroutine.name} uses unknown module {used!r}"
                )
        seen = set()
        for decl in subroutine.decls:
            if decl.name in seen:
                raise FortranSemanticError(
                    f"{subroutine.name}: duplicate declaration of {decl.name}"
                )
            seen.add(decl.name)
    for module in program.modules.values():
        seen = set()
        for decl in module.decls:
            if decl.name in seen:
                raise FortranSemanticError(
                    f"module {module.name}: duplicate declaration of {decl.name}"
                )
            seen.add(decl.name)


def find_declaration(
    name: str, decls: List[ast.VarDecl]
) -> Optional[ast.VarDecl]:
    for decl in decls:
        if decl.name == name:
            return decl
    return None
