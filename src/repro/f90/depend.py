"""Loop dependence analysis for the auto-paralleliser.

Decides, conservatively, whether the iterations of a DO loop are
independent — the same job Sun Studio's ``-autopar`` does for the
paper's Fortran code.  The analysis is deliberately *incomplete* in
the ways production auto-parallelisers are (the paper: "the compiler
can not always work out the data dependences in complete detail"):

* any CALL in the body defeats it (no interprocedural analysis);
* an array is distributable only when the loop variable appears as a
  *plain* subscript in the same dimension of every write and read —
  offsets like ``A(i+1)`` or subscripts through other variables are
  loop-carried as far as it knows;
* scalars must be provably private (written before read each
  iteration) or match a reduction pattern (``s = s + e``,
  ``s = MAX(s, e)``, ...), which the ``-reduction`` flag enables.

The result feeds :mod:`repro.f90.autopar`, which annotates the loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.f90 import ast

#: names treated as intrinsic functions rather than arrays when called
INTRINSIC_NAMES = {
    "SQRT", "ABS", "EXP", "LOG", "SIN", "COS", "DBLE", "FLOAT", "INT",
    "NINT", "MAX", "MIN", "MOD", "SUM", "MAXVAL", "MINVAL", "SIZE",
}

_REDUCTION_INTRINSICS = {"MAX": "MAX", "MIN": "MIN"}


@dataclass
class LoopAnalysis:
    parallel: bool
    reduction_vars: Dict[str, str] = field(default_factory=dict)
    private_vars: List[str] = field(default_factory=list)
    reason: str = ""


@dataclass
class _Access:
    name: str
    is_write: bool
    subscripts: Optional[List[ast.Section]]  # None = scalar access
    statement: ast.Stmt
    order: int


def _collect_accesses(statements: List[ast.Stmt]) -> Tuple[List[_Access], List[str], bool]:
    """Linearised accesses, inner loop variables, and a has-call flag."""
    accesses: List[_Access] = []
    inner_loop_vars: List[str] = []
    has_call = False
    counter = [0]

    def read_expr(expr: ast.Expr, statement: ast.Stmt) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Ref):
                if node.has_parens and node.name in INTRINSIC_NAMES:
                    continue  # argument refs are visited by walk_expr anyway
                counter[0] += 1
                accesses.append(
                    _Access(
                        node.name,
                        False,
                        node.subscripts if node.has_parens else None,
                        statement,
                        counter[0],
                    )
                )

    def visit(statements: List[ast.Stmt]) -> None:
        nonlocal has_call
        for statement in statements:
            if isinstance(statement, ast.Assign):
                read_expr(statement.expr, statement)
                for section in statement.target.subscripts:
                    for child in (section.index, section.lower, section.upper):
                        if child is not None:
                            read_expr(child, statement)
                counter[0] += 1
                accesses.append(
                    _Access(
                        statement.target.name,
                        True,
                        statement.target.subscripts
                        if statement.target.has_parens
                        else None,
                        statement,
                        counter[0],
                    )
                )
            elif isinstance(statement, ast.If):
                read_expr(statement.condition, statement)
                visit(statement.then_body)
                for condition, block in statement.elif_blocks:
                    read_expr(condition, statement)
                    visit(block)
                visit(statement.else_body)
            elif isinstance(statement, ast.Do):
                inner_loop_vars.append(statement.var)
                read_expr(statement.lower, statement)
                read_expr(statement.upper, statement)
                if statement.step is not None:
                    read_expr(statement.step, statement)
                visit(statement.body)
            elif isinstance(statement, ast.DoWhile):
                read_expr(statement.condition, statement)
                visit(statement.body)
            elif isinstance(statement, ast.Call):
                has_call = True
            elif isinstance(statement, ast.Print):
                for item in statement.items:
                    read_expr(item, statement)
    visit(statements)
    return accesses, inner_loop_vars, has_call


def _is_plain_var(expr: Optional[ast.Expr], var: str) -> bool:
    return (
        isinstance(expr, ast.Ref)
        and expr.name == var
        and not expr.has_parens
    )


def _mentions_var(expr: Optional[ast.Expr], var: str) -> bool:
    if expr is None:
        return False
    return any(
        isinstance(node, ast.Ref) and node.name == var and not node.has_parens
        for node in ast.walk_expr(expr)
    )


def _reduction_pattern(statement: ast.Assign) -> Optional[str]:
    """Return the reduction operator if the assignment matches one."""
    name = statement.target.name
    expr = statement.expr
    if isinstance(expr, ast.Ref) and expr.has_parens and expr.name in _REDUCTION_INTRINSICS:
        operands = [s.index for s in expr.subscripts]
        if any(_is_plain_var(operand, name) for operand in operands):
            return _REDUCTION_INTRINSICS[expr.name]
        return None
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "*"):
        if _is_plain_var(expr.left, name) or _is_plain_var(expr.right, name):
            return expr.op
    return None


def analyze_loop(loop: ast.Do) -> LoopAnalysis:
    """Dependence analysis of one DO loop (independent of nesting)."""
    accesses, inner_loop_vars, has_call = _collect_accesses(loop.body)
    if has_call:
        return LoopAnalysis(False, reason="CALL with unknown side effects")

    var = loop.var
    reductions: Dict[str, str] = {}
    privates: List[str] = list(dict.fromkeys(inner_loop_vars))

    # classify scalars
    scalar_names = {a.name for a in accesses if a.subscripts is None}
    scalar_names -= {var}
    for name in sorted(scalar_names):
        if name in privates:
            continue
        touching = [a for a in accesses if a.name == name and a.subscripts is None]
        writes = [a for a in touching if a.is_write]
        if not writes:
            continue  # read-only shared scalar
        reduction_ops = {
            _reduction_pattern(a.statement)
            for a in writes
            if isinstance(a.statement, ast.Assign)
        }
        if len(writes) >= 1 and None not in reduction_ops and len(reduction_ops) == 1:
            # every write is the same reduction; reads elsewhere disqualify
            other_reads = [
                a
                for a in touching
                if not a.is_write and a.statement not in [w.statement for w in writes]
            ]
            if not other_reads:
                reductions[name] = reduction_ops.pop()
                continue
        first = min(touching, key=lambda a: a.order)
        if first.is_write and isinstance(first.statement, ast.Assign) and not _mentions_var(
            first.statement.expr, name
        ):
            privates.append(name)
            continue
        return LoopAnalysis(
            False, reason=f"scalar {name} carried across iterations"
        )

    # classify arrays
    array_names = {a.name for a in accesses if a.subscripts is not None}
    for name in sorted(array_names):
        touching = [a for a in accesses if a.name == name and a.subscripts is not None]
        writes = [a for a in touching if a.is_write]
        if not writes:
            continue  # read-only array
        distribution_dim: Optional[int] = None
        for write in writes:
            if any(s.is_range for s in write.subscripts or []):
                return LoopAnalysis(
                    False, reason=f"array section of {name} written inside the loop"
                )
            dims_with_var = [
                position
                for position, section in enumerate(write.subscripts or [])
                if _is_plain_var(section.index, var)
            ]
            if not dims_with_var:
                if any(
                    _mentions_var(section.index, var)
                    for section in (write.subscripts or [])
                ):
                    return LoopAnalysis(
                        False,
                        reason=f"complex subscript of {name} involves {var}",
                    )
                return LoopAnalysis(
                    False, reason=f"iteration-invariant write to {name}"
                )
            if distribution_dim is None:
                distribution_dim = dims_with_var[0]
            elif distribution_dim not in dims_with_var:
                return LoopAnalysis(
                    False, reason=f"inconsistent distribution of {name}"
                )
        for access in touching:
            sections = access.subscripts or []
            if distribution_dim is None or distribution_dim >= len(sections):
                return LoopAnalysis(
                    False, reason=f"rank mismatch accessing {name}"
                )
            section = sections[distribution_dim]
            if section.is_range or not _is_plain_var(section.index, var):
                return LoopAnalysis(
                    False, reason=f"loop-carried dependence on {name}"
                )

    return LoopAnalysis(True, reductions, privates)
