! 2-D compressible Euler solver in loop-nest Fortran-90 — the baseline
! implementation the paper ports to SaC.  Same numerics as
! euler2d.sac: piecewise-constant reconstruction, Rusanov fluxes,
! 3rd-order TVD Runge-Kutta, two-channel boundary conditions (walls
! with exit sections [E0+1, E1] blowing the Rankine-Hugoniot post-shock
! primitive states QINL / QINB).
!
! State layout is the classic component-first Fortran one:
! Q(1,ix,iy) = rho, Q(2,..) = rho*u, Q(3,..) = rho*v, Q(4,..) = E.
! Subset note: scalars pass by value, so GETDT2 returns through a
! length-1 array.

MODULE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  REAL*8, PARAMETER :: Gam = 1.4D0
END MODULE

! primitive variables with a one-cell ghost frame, boundary conditions
! applied (left/bottom: wall outside the exit section, inflow inside;
! right/top: transmissive)
SUBROUTINE PRIMBC(Q, NX, NY, E0, E1, QINL, QINB, QP)
  USE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  INTEGER NX, NY, E0, E1
  REAL*8 Q(4, NX, NY), QINL(4), QINB(4)
  REAL*8 QP(4, 0:NX+1, 0:NY+1)

  DO iy = 1, NY
    DO ix = 1, NX
      R = Q(1, ix, iy)
      U = Q(2, ix, iy) / R
      V = Q(3, ix, iy) / R
      P = (Gam - 1.D0) * (Q(4, ix, iy) - 0.5D0 * R * (U*U + V*V))
      QP(1, ix, iy) = R
      QP(2, ix, iy) = U
      QP(3, ix, iy) = V
      QP(4, ix, iy) = P
    END DO
  END DO

  ! left and right ghost columns
  DO iy = 1, NY
    IF (iy >= E0 + 1 .AND. iy <= E1) THEN
      QP(1, 0, iy) = QINL(1)
      QP(2, 0, iy) = QINL(2)
      QP(3, 0, iy) = QINL(3)
      QP(4, 0, iy) = QINL(4)
    ELSE
      QP(1, 0, iy) = QP(1, 1, iy)
      QP(2, 0, iy) = -QP(2, 1, iy)
      QP(3, 0, iy) = QP(3, 1, iy)
      QP(4, 0, iy) = QP(4, 1, iy)
    END IF
    QP(1, NX+1, iy) = QP(1, NX, iy)
    QP(2, NX+1, iy) = QP(2, NX, iy)
    QP(3, NX+1, iy) = QP(3, NX, iy)
    QP(4, NX+1, iy) = QP(4, NX, iy)
  END DO

  ! bottom and top ghost rows
  DO ix = 1, NX
    IF (ix >= E0 + 1 .AND. ix <= E1) THEN
      QP(1, ix, 0) = QINB(1)
      QP(2, ix, 0) = QINB(2)
      QP(3, ix, 0) = QINB(3)
      QP(4, ix, 0) = QINB(4)
    ELSE
      QP(1, ix, 0) = QP(1, ix, 1)
      QP(2, ix, 0) = QP(2, ix, 1)
      QP(3, ix, 0) = -QP(3, ix, 1)
      QP(4, ix, 0) = QP(4, ix, 1)
    END IF
    QP(1, ix, NY+1) = QP(1, ix, NY)
    QP(2, ix, NY+1) = QP(2, ix, NY)
    QP(3, ix, NY+1) = QP(3, ix, NY)
    QP(4, ix, NY+1) = QP(4, ix, NY)
  END DO
END SUBROUTINE

! spatial operator RHS = -dF/dx - dG/dy via Rusanov interface fluxes
SUBROUTINE EULRHS(Q, NX, NY, DX, DY, E0, E1, QINL, QINB, RHS)
  USE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  INTEGER NX, NY, E0, E1
  REAL*8 Q(4, NX, NY), RHS(4, NX, NY), QINL(4), QINB(4)
  REAL*8 QP(4, 0:NX+1, 0:NY+1)
  REAL*8 FX(4, NX+1, NY), FY(4, NX, NY+1)

  CALL PRIMBC(Q, NX, NY, E0, E1, QINL, QINB, QP)

  ! x-direction fluxes at the NX+1 vertical interfaces
  DO iy = 1, NY
    DO i = 1, NX + 1
      RL = QP(1, i-1, iy)
      UL = QP(2, i-1, iy)
      VL = QP(3, i-1, iy)
      PL = QP(4, i-1, iy)
      RR = QP(1, i, iy)
      UR = QP(2, i, iy)
      VR = QP(3, i, iy)
      PR = QP(4, i, iy)
      EL = PL / (Gam - 1.D0) + 0.5D0 * RL * (UL*UL + VL*VL)
      ER = PR / (Gam - 1.D0) + 0.5D0 * RR * (UR*UR + VR*VR)
      CL = SQRT(Gam * PL / RL)
      CR = SQRT(Gam * PR / RR)
      SMAX = MAX(ABS(UL) + CL, ABS(UR) + CR)
      FX(1, i, iy) = 0.5D0 * (RL*UL + RR*UR) - 0.5D0 * SMAX * (RR - RL)
      FX(2, i, iy) = 0.5D0 * (RL*UL*UL + PL + RR*UR*UR + PR) &
                   - 0.5D0 * SMAX * (RR*UR - RL*UL)
      FX(3, i, iy) = 0.5D0 * (RL*UL*VL + RR*UR*VR) &
                   - 0.5D0 * SMAX * (RR*VR - RL*VL)
      FX(4, i, iy) = 0.5D0 * (UL*(EL + PL) + UR*(ER + PR)) &
                   - 0.5D0 * SMAX * (ER - EL)
    END DO
  END DO

  ! y-direction fluxes at the NY+1 horizontal interfaces
  DO iy = 1, NY + 1
    DO ix = 1, NX
      RL = QP(1, ix, iy-1)
      UL = QP(2, ix, iy-1)
      VL = QP(3, ix, iy-1)
      PL = QP(4, ix, iy-1)
      RR = QP(1, ix, iy)
      UR = QP(2, ix, iy)
      VR = QP(3, ix, iy)
      PR = QP(4, ix, iy)
      EL = PL / (Gam - 1.D0) + 0.5D0 * RL * (UL*UL + VL*VL)
      ER = PR / (Gam - 1.D0) + 0.5D0 * RR * (UR*UR + VR*VR)
      CL = SQRT(Gam * PL / RL)
      CR = SQRT(Gam * PR / RR)
      SMAX = MAX(ABS(VL) + CL, ABS(VR) + CR)
      FY(1, ix, iy) = 0.5D0 * (RL*VL + RR*VR) - 0.5D0 * SMAX * (RR - RL)
      FY(2, ix, iy) = 0.5D0 * (RL*VL*UL + RR*VR*UR) &
                    - 0.5D0 * SMAX * (RR*UR - RL*UL)
      FY(3, ix, iy) = 0.5D0 * (RL*VL*VL + PL + RR*VR*VR + PR) &
                    - 0.5D0 * SMAX * (RR*VR - RL*VL)
      FY(4, ix, iy) = 0.5D0 * (VL*(EL + PL) + VR*(ER + PR)) &
                    - 0.5D0 * SMAX * (ER - EL)
    END DO
  END DO

  DO iy = 1, NY
    DO ix = 1, NX
      DO k = 1, 4
        RHS(k, ix, iy) = (FX(k, ix, iy) - FX(k, ix+1, iy)) / DX &
                       + (FY(k, ix, iy) - FY(k, ix, iy+1)) / DY
      END DO
    END DO
  END DO
END SUBROUTINE

! CFL time step from the conservative state; result in DTOUT(1)
SUBROUTINE GETDT2(Q, NX, NY, DX, DY, CFLN, DTOUT)
  USE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  INTEGER NX, NY
  REAL*8 Q(4, NX, NY), DTOUT(1)

  EVmax = 0.D0
  DO iy = 1, NY
    DO ix = 1, NX
      R = Q(1, ix, iy)
      U = Q(2, ix, iy) / R
      V = Q(3, ix, iy) / R
      P = (Gam - 1.D0) * (Q(4, ix, iy) - 0.5D0 * R * (U*U + V*V))
      C = SQRT(Gam * P / R)
      EV = (ABS(U) + C) / DX + (ABS(V) + C) / DY
      EVmax = MAX(EV, EVmax)
    END DO
  END DO
  DTOUT(1) = CFLN / EVmax
END SUBROUTINE

! one TVD-RK3 step, updating Q in place
SUBROUTINE STEP(Q, NX, NY, DT, DX, DY, E0, E1, QINL, QINB)
  USE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  INTEGER NX, NY, E0, E1
  REAL*8 Q(4, NX, NY), QINL(4), QINB(4)
  REAL*8 Q1(4, NX, NY), Q2(4, NX, NY), RHS(4, NX, NY)

  CALL EULRHS(Q, NX, NY, DX, DY, E0, E1, QINL, QINB, RHS)
  Q1 = Q + DT * RHS
  CALL EULRHS(Q1, NX, NY, DX, DY, E0, E1, QINL, QINB, RHS)
  Q2 = 0.75D0 * Q + 0.25D0 * (Q1 + DT * RHS)
  CALL EULRHS(Q2, NX, NY, DX, DY, E0, E1, QINL, QINB, RHS)
  Q = Q / 3.D0 + (2.D0 / 3.D0) * (Q2 + DT * RHS)
END SUBROUTINE

! time loop: NSTEPS CFL-limited RK3 steps
SUBROUTINE SIMULATE(Q, NX, NY, NSTEPS, DX, DY, CFLN, E0, E1, QINL, QINB)
  USE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  INTEGER NX, NY, NSTEPS, E0, E1
  REAL*8 Q(4, NX, NY), QINL(4), QINB(4)
  REAL*8 DTA(1)

  DO s = 1, NSTEPS
    CALL GETDT2(Q, NX, NY, DX, DY, CFLN, DTA)
    CALL STEP(Q, NX, NY, DTA(1), DX, DY, E0, E1, QINL, QINB)
  END DO
END SUBROUTINE
