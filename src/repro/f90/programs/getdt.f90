! The paper's Section 4.2 GetDT, reproduced verbatim (modulo the
! surrounding module definitions it references): the CFL time-step
! computation over the primitive-variable array QP, whose layout is
! QP(1,ix,iy) = Ux, QP(2,..) = Uy, QP(3,..) = Pc, QP(4,..) = Rc.
!
! The host sizes the active window through IXmax/IYmax and reads the
! result from Vars' DT.  The nested loop is a MAX-reduction; the
! auto-paralleliser needs -reduction to parallelise it.

MODULE Cons
  IMPLICIT REAL*8 (A-H,O-Z)
  REAL*8, PARAMETER :: Gam = 1.4D0
  REAL*8 :: CFL = 0.5D0
  REAL*8 :: Dx = 1.D0
  REAL*8 :: Dy = 1.D0
END MODULE

MODULE Vars
  INTEGER :: IXmin = 1
  INTEGER :: IXmax = 1
  INTEGER :: IYmin = 1
  INTEGER :: IYmax = 1
  REAL*8 QP(4, 400, 400)
  REAL*8 DT
END MODULE

SUBROUTINE GetDT
  USE Cons
  USE Vars
  IMPLICIT REAL*8 (A-H,O-Z)

  EVmax = 0.d0
  DO iy=IYmin,IYmax
    DO ix=IXmin,IXmax
      Ux = QP(1,ix,iy)
      Uy = QP(2,ix,iy)
      Pc = QP(3,ix,iy)
      Rc = QP(4,ix,iy)
      C = SQRT(Gam*Pc/Rc)
      EV = (ABS(Ux)+C)/Dx+(ABS(Uy)+C)/Dy
      EVmax = MAX(EV,EVmax)
    END DO
  END DO

  DT = CFL/EVmax

END SUBROUTINE
