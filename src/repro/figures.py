"""Regeneration of every figure in the paper, as data + text rendering.

* :func:`figure1_sod`        — the three Sod-tube snapshots (Fig. 1),
  with the exact Riemann solution and error norms;
* :func:`figure2_schematic`  — the flow-configuration schematic (Fig. 2)
  as a labelled text diagram of the boundary layout actually used;
* :func:`figure3_interaction`— the 2-D shock-interaction snapshot
  (Fig. 3): density field + quantitative structure diagnostics;
* :func:`figure4_scaling`    — the wall-clock-vs-cores comparison
  (Fig. 4), via the measured-trace + machine-model methodology of
  :mod:`repro.perf.scaling`.

The benchmark harness calls these; examples print them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import viz
from repro.euler import diagnostics, exact_riemann_solve, problems
from repro.euler.problems import SOD
from repro.euler.solver import SolverConfig
from repro.perf.scaling import ScalingResult, TwoChannelWorkload, figure4_experiment


@dataclass
class SodSnapshot:
    time: float
    x: np.ndarray
    density: np.ndarray
    exact_density: np.ndarray

    @property
    def l1_error(self) -> float:
        dx = float(self.x[1] - self.x[0])
        return diagnostics.l1_error(self.density, self.exact_density, dx)


@dataclass
class Figure1Result:
    snapshots: List[SodSnapshot]

    def render(self) -> str:
        parts = []
        for snap in self.snapshots:
            parts.append(
                viz.ascii_profile(
                    snap.x,
                    snap.density,
                    label=f"Sod density at t = {snap.time:.3f} (L1 error {snap.l1_error:.4f})",
                )
            )
        return "\n\n".join(parts)


def figure1_sod(
    n_cells: int = 400,
    times: Tuple[float, ...] = (0.05, 0.10, 0.15),
    config: Optional[SolverConfig] = None,
) -> Figure1Result:
    """Fig. 1: the expanding Sod shock wave at three instants."""
    config = config or SolverConfig()  # WENO-3 + characteristic + RK3
    solver, x = problems.sod(n_cells, config)
    snapshots: List[SodSnapshot] = []
    for time in sorted(times):
        solver.run(t_end=time)
        exact = exact_riemann_solve(SOD.left, SOD.right, x, time, SOD.x_diaphragm)
        snapshots.append(
            SodSnapshot(
                time=time,
                x=x.copy(),
                density=solver.primitive[:, 0].copy(),
                exact_density=exact[:, 0],
            )
        )
    return Figure1Result(snapshots)


def figure2_schematic(n: int = 32, h: float = 16.0) -> str:
    """Fig. 2: the flow configuration, as the boundary map actually used."""
    _, setup = problems.two_channel(n_cells=n, h=h)
    dx = setup.dx
    exit_lo = int(round(setup.exit_start / dx))
    exit_hi = int(round(setup.exit_stop / dx))
    width = 48
    header = (
        f"computational domain {setup.domain_size:g} x {setup.domain_size:g}"
        f" (= 2h x 2h, h = {setup.h:g}), Ms = {setup.mach}\n"
        f"left/bottom walls with channel exit sections on cells"
        f" [{exit_lo}, {exit_hi}) of {n}"
    )
    rows = []
    for j in reversed(range(n)):
        left = "I" if exit_lo <= j < exit_hi else "W"
        rows.append(left + "." * (width - 2) + "t")
    bottom = "".join(
        "I" if exit_lo <= int(i * n / width) < exit_hi else "W" for i in range(width)
    )
    legend = "W = solid wall, I = supersonic inflow (post-shock state), t = transmissive"
    return "\n".join([header] + rows + [bottom, legend])


@dataclass
class Figure3Result:
    primitive: np.ndarray
    setup: problems.TwoChannelSetup
    time: float
    steps: int
    shock_radius: float
    shock_circularity: float
    symmetry_error: float
    disturbed_fraction: float
    max_density_ratio: float

    def render(self) -> str:
        stats = (
            f"t = {self.time:.3f} after {self.steps} steps; primary front radius"
            f" {self.shock_radius:.1f} (circularity spread {self.shock_circularity:.3f});"
            f" diagonal symmetry error {self.symmetry_error:.2e};"
            f" max density ratio {self.max_density_ratio:.2f}"
        )
        return stats + "\n" + viz.ascii_field(
            self.primitive[..., 0], label="density"
        )


def figure3_interaction(
    n_cells: int = 100,
    mach: float = 2.2,
    steps: Optional[int] = None,
    config: Optional[SolverConfig] = None,
) -> Figure3Result:
    """Fig. 3: snapshot of the two-channel shock interaction.

    Defaults are scaled down from the paper's 400x400 so the snapshot
    is computable in seconds; pass ``n_cells=400`` for full scale.
    """
    config = config or SolverConfig(riemann="hllc", reconstruction="weno3")
    h = n_cells / 2.0  # dx = 1, as in the paper
    solver, setup = problems.two_channel(n_cells=n_cells, h=h, mach=mach, config=config)
    if steps is None:
        # long enough (t ~ 1.5 h / shock speed) for the primary fronts to
        # meet and the Mach stem to form on the diagonal
        steps = int(round(1.5 * n_cells))
    solver.run(max_steps=steps)
    primitive = solver.primitive
    exit_centre = (setup.exit_start + setup.exit_stop) / 2.0
    radius, spread = diagnostics.shock_front_radius(
        primitive, origin=(0.0, exit_centre), dx=setup.dx, p_ambient=setup.p0
    )
    return Figure3Result(
        primitive=primitive,
        setup=setup,
        time=solver.time,
        steps=solver.steps,
        shock_radius=radius,
        shock_circularity=spread,
        symmetry_error=diagnostics.symmetry_error(primitive),
        disturbed_fraction=diagnostics.disturbed_fraction(primitive, setup.p0),
        max_density_ratio=float(primitive[..., 0].max() / setup.rho0),
    )


def figure4_scaling(
    grid: int = 400,
    steps: int = 1000,
    workload: Optional[TwoChannelWorkload] = None,
) -> ScalingResult:
    """Fig. 4: simulated wall clock of SaC vs Fortran over 1..16 cores."""
    return figure4_experiment(grid=grid, steps=steps, workload=workload)


def render_figure4(result: ScalingResult) -> str:
    from repro.perf.scaling import format_scaling_table

    cores = [p.cores for p in result.points]
    chart = viz.ascii_series(
        [
            ("SaC", cores, [p.sac_seconds for p in result.points]),
            ("F90", cores, [p.fortran_seconds for p in result.points]),
        ],
        label=f"Fig. 4: wall clock vs cores ({result.grid}x{result.grid})",
        log_y=True,
    )
    return format_scaling_table(result) + "\n\n" + chart
