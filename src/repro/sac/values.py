"""Runtime values of the SaC evaluators.

Every SaC value is represented as a NumPy array (0-d for scalars) with
dtype float64 / int64 / bool mapping to the base types double / int /
bool.  Helpers here normalise host inputs and recover SaC type
information from runtime values.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.errors import SacRuntimeError
from repro.sac.types import SacType, concrete_type

HostValue = Union[int, float, bool, np.ndarray, list, tuple]

_DTYPE_TO_BASE = {
    np.dtype(np.float64): "double",
    np.dtype(np.int64): "int",
    np.dtype(np.bool_): "bool",
}

_BASE_TO_DTYPE = {
    "double": np.float64,
    "int": np.int64,
    "bool": np.bool_,
}


def to_value(host: HostValue) -> np.ndarray:
    """Normalise a host value to a SaC runtime value (NumPy array).

    Python ints become int, floats become double, bools stay bool;
    other dtypes are promoted to the nearest SaC base type.
    """
    if isinstance(host, np.ndarray):
        array = host
    elif isinstance(host, bool):
        return np.bool_(host)
    elif isinstance(host, (int, np.integer)):
        return np.int64(host)
    elif isinstance(host, (float, np.floating)):
        return np.float64(host)
    else:
        array = np.asarray(host)

    if array.dtype in _DTYPE_TO_BASE:
        return array
    if np.issubdtype(array.dtype, np.bool_):
        return array.astype(np.bool_)
    if np.issubdtype(array.dtype, np.integer):
        return array.astype(np.int64)
    if np.issubdtype(array.dtype, np.floating):
        return array.astype(np.float64)
    raise SacRuntimeError(f"unsupported host dtype {array.dtype}")


def base_of(value) -> str:
    """SaC base type of a runtime value."""
    dtype = np.asarray(value).dtype
    for known, base in _DTYPE_TO_BASE.items():
        if dtype == known:
            return base
    raise SacRuntimeError(f"value has non-SaC dtype {dtype}")


def dtype_of(base: str):
    return _BASE_TO_DTYPE[base]


def shape_of(value) -> Tuple[int, ...]:
    return tuple(np.asarray(value).shape)


def type_of(value) -> SacType:
    """Concrete (AKS) SaC type of a runtime value."""
    return concrete_type(base_of(value), shape_of(value))


def is_scalar(value) -> bool:
    return np.asarray(value).ndim == 0


def as_index_vector(value, context: str) -> Tuple[int, ...]:
    """Interpret a value as an index/shape vector (scalar = length-1)."""
    array = np.asarray(value)
    if array.ndim == 0:
        return (int(array),)
    if array.ndim == 1 and np.issubdtype(array.dtype, np.integer):
        return tuple(int(entry) for entry in array)
    raise SacRuntimeError(f"{context}: expected an integer vector, got shape {array.shape}")
