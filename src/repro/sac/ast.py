"""Abstract syntax tree for the SaC subset.

Nodes are plain dataclasses; every node carries a :class:`Span` for
diagnostics.  The two constructs the paper singles out (Section 2) are
:class:`WithLoop` (the data-parallel array definition) and the C-style
:class:`For` recurrence; set notation ``{ [i,j] -> e }`` is kept as its
own node (:class:`SetComprehension`) until the lowering pass turns it
into a with-loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.sac.source import Span, UNKNOWN_SPAN


# --------------------------------------------------------------------------
# types (syntactic)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeExpr:
    """A syntactic type: base name plus a shape specification.

    ``dims`` is a list of ``int`` (known extent) and/or ``"."``
    (known-dimension, unknown extent), or the strings ``"+"`` (unknown
    dimensionality, at least 1) / ``"*"`` (anything, including scalar)
    — SaC's AKS/AKD/AUD hierarchy.  A scalar is ``dims == []``.
    """

    base: str
    dims: Union[List[object], str] = field(default_factory=list)
    span: Span = UNKNOWN_SPAN

    def __str__(self) -> str:
        if self.dims == []:
            return self.base
        if isinstance(self.dims, str):
            return f"{self.base}[{self.dims}]"
        inner = ",".join(str(d) for d in self.dims)
        return f"{self.base}[{inner}]"


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    span: Span


@dataclass
class IntLit(Expr):
    value: int
    span: Span = UNKNOWN_SPAN


@dataclass
class DoubleLit(Expr):
    value: float
    span: Span = UNKNOWN_SPAN


@dataclass
class BoolLit(Expr):
    value: bool
    span: Span = UNKNOWN_SPAN


@dataclass
class Var(Expr):
    name: str
    span: Span = UNKNOWN_SPAN


@dataclass
class ArrayLit(Expr):
    """Bracketed vector/array literal ``[e1, e2, ...]``."""

    elements: List[Expr]
    span: Span = UNKNOWN_SPAN


@dataclass
class BinOp(Expr):
    """Binary operator; arithmetic ones map elementwise over arrays."""

    op: str
    left: Expr
    right: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class UnOp(Expr):
    op: str  # '-' | '!'
    operand: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class Cond(Expr):
    """Ternary conditional — in SaC, IF is an expression."""

    condition: Expr
    then: Expr
    otherwise: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class Call(Expr):
    """Function application, optionally module-qualified (``MathArray::fabs``)."""

    name: str
    args: List[Expr]
    module: Optional[str] = None
    span: Span = UNKNOWN_SPAN


@dataclass
class Index(Expr):
    """Array selection ``a[i, j]`` or ``a[iv]`` (vector index).

    With fewer indices than dimensions the result is a subarray, as in
    SaC's ``sel``.
    """

    array: Expr
    indices: List[Expr]
    span: Span = UNKNOWN_SPAN


# --------------------------------------------------------------------------
# with-loops
# --------------------------------------------------------------------------


@dataclass
class Generator:
    """One partition ``(lower <= iv < upper) : body`` of a with-loop.

    ``index_vars`` is either a list of scalar names (``[i, j]``) or a
    single-element list with a vector variable name.  ``lower`` /
    ``upper`` of ``None`` mean the ``.`` default (whole index space).
    ``*_inclusive`` records whether ``<=`` was used on that side.
    """

    index_vars: List[str]
    vector_var: bool
    lower: Optional[Expr]
    upper: Optional[Expr]
    lower_inclusive: bool
    upper_inclusive: bool
    body: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class GenArray:
    """``genarray(shape, default)`` with-loop operation."""

    shape: Expr
    default: Optional[Expr]
    span: Span = UNKNOWN_SPAN


@dataclass
class ModArray:
    """``modarray(array)`` with-loop operation."""

    array: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class Fold:
    """``fold(op, neutral)`` with-loop operation; op is +, *, max or min."""

    op: str
    neutral: Expr
    span: Span = UNKNOWN_SPAN


WithOperation = Union[GenArray, ModArray, Fold]


@dataclass
class WithLoop(Expr):
    generators: List[Generator]
    operation: WithOperation
    span: Span = UNKNOWN_SPAN


@dataclass
class SetComprehension(Expr):
    """Set notation ``{ [i,j] -> e }`` / ``{ iv -> e }``.

    ``bound`` is the optional explicit shape from the extended form
    ``{ [i,j] -> e | [i,j] < shape }``; without it the shape is
    inferred from the indexings inside the body (lowering pass).
    """

    index_vars: List[str]
    vector_var: bool
    body: Expr
    bound: Optional[Expr] = None
    span: Span = UNKNOWN_SPAN


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


class Stmt:
    """Base class for statement nodes."""

    span: Span


@dataclass
class Assign(Stmt):
    """(Re-)definition of a variable — a new binding, never mutation."""

    name: str
    expr: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class If(Stmt):
    """Statement-level conditional.

    Per the paper's Section 2, this is really an expression: the type
    checker requires any variable used after the If to be defined by
    *both* branches (or before the If).
    """

    condition: Expr
    then_body: List[Stmt]
    else_body: List[Stmt]
    span: Span = UNKNOWN_SPAN


@dataclass
class For(Stmt):
    """C-style for loop — SaC's recurrence construct."""

    init: Assign
    condition: Expr
    update: Assign
    body: List[Stmt]
    span: Span = UNKNOWN_SPAN


@dataclass
class While(Stmt):
    condition: Expr
    body: List[Stmt]
    span: Span = UNKNOWN_SPAN


@dataclass
class Return(Stmt):
    expr: Expr
    span: Span = UNKNOWN_SPAN


# --------------------------------------------------------------------------
# top level
# --------------------------------------------------------------------------


@dataclass
class Param:
    type: TypeExpr
    name: str


@dataclass
class Function:
    name: str
    return_type: TypeExpr
    params: List[Param]
    body: List[Stmt]
    inline: bool = False
    span: Span = UNKNOWN_SPAN


@dataclass
class TypeDef:
    """``typedef double[4] fluid_cv;`` — a structural array alias."""

    name: str
    definition: TypeExpr
    span: Span = UNKNOWN_SPAN


@dataclass
class GlobalDef:
    """Top-level constant: ``double GAM = 1.4;``."""

    type: TypeExpr
    name: str
    expr: Expr
    span: Span = UNKNOWN_SPAN


@dataclass
class Module:
    name: str
    uses: List[str]
    typedefs: List[TypeDef]
    globals: List[GlobalDef]
    functions: List[Function]


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    children: List[Expr] = []
    if isinstance(expr, ArrayLit):
        children = expr.elements
    elif isinstance(expr, BinOp):
        children = [expr.left, expr.right]
    elif isinstance(expr, UnOp):
        children = [expr.operand]
    elif isinstance(expr, Cond):
        children = [expr.condition, expr.then, expr.otherwise]
    elif isinstance(expr, Call):
        children = expr.args
    elif isinstance(expr, Index):
        children = [expr.array] + expr.indices
    elif isinstance(expr, WithLoop):
        for generator in expr.generators:
            if generator.lower is not None:
                children.append(generator.lower)
            if generator.upper is not None:
                children.append(generator.upper)
            children.append(generator.body)
        operation = expr.operation
        if isinstance(operation, GenArray):
            children.append(operation.shape)
            if operation.default is not None:
                children.append(operation.default)
        elif isinstance(operation, ModArray):
            children.append(operation.array)
        elif isinstance(operation, Fold):
            children.append(operation.neutral)
    elif isinstance(expr, SetComprehension):
        children = [expr.body] + ([expr.bound] if expr.bound is not None else [])
    for child in children:
        yield from walk_expr(child)
