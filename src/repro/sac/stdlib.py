"""Builtin functions — the slice of the SaC standard library the
paper's code uses (``Array`` operations, ``Math``/``MathArray``).

Each builtin has a value-level implementation (used by the interpreter
and as the semantic reference for the backends) and, where its result
shape is a function of argument shapes, a *shape rule* used by the type
checker.  All array arguments follow SaC conventions, e.g.
``drop([1], a)`` drops one leading element, ``drop([-1], a)`` one
trailing element; ``take([-2], a)`` takes the last two.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import SacRuntimeError, SacTypeError
from repro.sac import values as V

# type alias: shape rule gets arg (base, dims-or-None) pairs, returns the same.
ShapeIn = Tuple[str, Optional[Tuple[Optional[int], ...]]]


def _drop(amount, array) -> np.ndarray:
    array = np.asarray(array)
    counts = V.as_index_vector(amount, "drop")
    if len(counts) > array.ndim:
        raise SacRuntimeError(
            f"drop: {len(counts)} counts for a rank-{array.ndim} array"
        )
    slices = []
    for count, extent in zip(counts, array.shape):
        if abs(count) > extent:
            raise SacRuntimeError(f"drop: count {count} exceeds extent {extent}")
        if count >= 0:
            slices.append(slice(count, None))
        else:
            slices.append(slice(None, extent + count))
    return array[tuple(slices)]


def _take(amount, array) -> np.ndarray:
    array = np.asarray(array)
    counts = V.as_index_vector(amount, "take")
    if len(counts) > array.ndim:
        raise SacRuntimeError(
            f"take: {len(counts)} counts for a rank-{array.ndim} array"
        )
    slices = []
    for count, extent in zip(counts, array.shape):
        if abs(count) > extent:
            raise SacRuntimeError(f"take: count {count} exceeds extent {extent}")
        if count >= 0:
            slices.append(slice(None, count))
        else:
            slices.append(slice(extent + count, None))
    return array[tuple(slices)]


def _sel(index, array) -> np.ndarray:
    """SaC ``sel(iv, a)``: select element or subarray by index vector."""
    array = np.asarray(array)
    iv = V.as_index_vector(index, "sel")
    if len(iv) > array.ndim:
        raise SacRuntimeError(f"sel: rank-{len(iv)} index into rank-{array.ndim} array")
    for position, (i, extent) in enumerate(zip(iv, array.shape)):
        if not 0 <= i < extent:
            raise SacRuntimeError(
                f"sel: index {i} out of bounds for axis {position} (extent {extent})"
            )
    return array[iv]


def _modarray_fn(array, index, value) -> np.ndarray:
    """Functional update: copy of ``array`` with ``array[iv] = value``."""
    array = np.asarray(array)
    iv = V.as_index_vector(index, "modarray")
    result = array.copy()
    result[iv] = value
    return result


def _reshape(shape, array) -> np.ndarray:
    target = V.as_index_vector(shape, "reshape")
    array = np.asarray(array)
    if int(np.prod(target)) != array.size:
        raise SacRuntimeError(
            f"reshape: cannot reshape {array.size} elements to {target}"
        )
    return array.reshape(target)


def _genarray_fn(shape, default) -> np.ndarray:
    extents = V.as_index_vector(shape, "genarray")
    default = np.asarray(default)
    return np.broadcast_to(default, tuple(extents) + default.shape).copy()


def _shape(array) -> np.ndarray:
    return np.asarray(np.asarray(array).shape, dtype=np.int64)


def _dim(array):
    return np.int64(np.asarray(array).ndim)


def _tod(value):
    return np.asarray(value, dtype=np.float64)[()]


def _toi(value):
    return np.asarray(np.trunc(np.asarray(value, dtype=np.float64))).astype(np.int64)[()]


def _elementwise(fn):
    def wrapped(*args):
        return fn(*[np.asarray(a) for a in args])

    return wrapped


# --------------------------------------------------------------------------
# shape rules for the checker (dims=None means unknown rank)
# --------------------------------------------------------------------------


def _same_shape_rule(args):
    base, dims = args[0]
    return base, dims


def _double_same_shape_rule(args):
    _, dims = args[0]
    return "double", dims


def _scalar_rule_base_first(args):
    base, _ = args[0]
    return base, ()


def _shape_rule_shape(args):
    _, dims = args[0]
    if dims is None:
        return "int", (None,)
    return "int", (len(dims),)


def _binary_broadcast_rule(args):
    (base_a, dims_a), (base_b, dims_b) = args
    from repro.sac.types import join_base

    base = join_base(base_a, base_b)
    if dims_a is None or dims_b is None:
        return base, None
    return base, dims_a if len(dims_a) >= len(dims_b) else dims_b


class Builtin:
    """A builtin with its implementation and optional checker shape rule."""

    def __init__(self, name: str, impl: Callable, shape_rule=None, arity=None):
        self.name = name
        self.impl = impl
        self.shape_rule = shape_rule
        self.arity = arity

    def __call__(self, *args):
        return self.impl(*args)


BUILTINS: Dict[str, Builtin] = {}


def _register(name: str, impl, shape_rule=None, arity=None) -> None:
    BUILTINS[name] = Builtin(name, impl, shape_rule, arity)


_register("dim", _dim, lambda args: ("int", ()), 1)
_register("shape", _shape, _shape_rule_shape, 1)
_register("sel", _sel, None, 2)
_register("drop", _drop, None, 2)
_register("take", _take, None, 2)
_register("reshape", _reshape, None, 2)
_register("modarray", _modarray_fn, None, 3)
_register("genarray", _genarray_fn, None, 2)

_register("sum", _elementwise(np.sum), _scalar_rule_base_first, 1)
_register("prod", _elementwise(np.prod), _scalar_rule_base_first, 1)
_register("maxval", _elementwise(np.max), _scalar_rule_base_first, 1)
_register("minval", _elementwise(np.min), _scalar_rule_base_first, 1)

_register("abs", _elementwise(np.abs), _same_shape_rule, 1)
_register("fabs", _elementwise(np.abs), _double_same_shape_rule, 1)
_register("sqrt", _elementwise(np.sqrt), _double_same_shape_rule, 1)
_register("exp", _elementwise(np.exp), _double_same_shape_rule, 1)
_register("log", _elementwise(np.log), _double_same_shape_rule, 1)
_register("sin", _elementwise(np.sin), _double_same_shape_rule, 1)
_register("cos", _elementwise(np.cos), _double_same_shape_rule, 1)
_register("sign", _elementwise(np.sign), _same_shape_rule, 1)

_register("min", _elementwise(np.minimum), _binary_broadcast_rule, 2)
_register("max", _elementwise(np.maximum), _binary_broadcast_rule, 2)
_register("pow", _elementwise(np.power), _binary_broadcast_rule, 2)

_register("transpose", _elementwise(np.transpose), None, 1)
_register("tod", _tod, lambda args: ("double", args[0][1]), 1)
_register("toi", _toi, lambda args: ("int", args[0][1]), 1)

#: Module names accepted in ``use`` declarations / qualified calls.
KNOWN_MODULES = {"Array", "ArrayBasics", "Math", "MathArray", "StdIO", "fluid"}


def lookup(name: str, module: Optional[str] = None) -> Optional[Builtin]:
    """Find a builtin; module qualifiers are accepted but not namespaced
    (the subset's stdlib is flat, like using every module at once)."""
    if module is not None and module not in KNOWN_MODULES:
        raise SacTypeError(f"unknown module {module!r}")
    return BUILTINS.get(name)
