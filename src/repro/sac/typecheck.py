"""Type and shape checker with call-site specialisation.

This is the phase the paper's Section 2/4 claims hinge on: rank-generic
functions (``fluid_pv[+]``) are *specialised* per concrete call-site
shape, so "no penalty is paid for the generic type" and the same body
serves 1-D and 2-D data.  The checker runs an abstract interpreter over
the shape domain:

* every expression is annotated (``node.sac_type``) with a
  :class:`~repro.sac.types.SacType`, which may be partially known;
* compile-time constants (int scalars and small int vectors — shapes,
  bounds, drop/take counts) are propagated so genarray frames and
  drop/take results get exact shapes;
* user calls are checked per distinct argument-type tuple and cached —
  the specialisation table is part of the public result
  (:attr:`TypeChecker.specializations`), and tests assert that e.g.
  ``getDt`` acquires one 1-D and one 2-D instance;
* the conditional-definition rule is enforced: a variable defined in
  only one branch of an ``if`` is poisoned and may not be used after
  (the paper: "control flow through conditionals can affect whether a
  variable is defined; however this is not valid SaC code").

The checker only *rejects* provable errors; where shapes cannot be
determined statically it degrades to AKD/AUD types and leaves the rest
to the runtime, like a gradual shape system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SacTypeError
from repro.sac import ast
from repro.sac import stdlib
from repro.sac.symtab import Scope
from repro.sac.types import (
    BOOL,
    INT,
    SacType,
    TypedefEnv,
    array_of,
    from_type_expr,
    is_subtype,
    join_base,
    register_typedef,
    scalar,
)

_MAX_WIDENING_ROUNDS = 5


@dataclass(frozen=True)
class Abstract:
    """Abstract value: a type plus, when known, the constant value."""

    type: SacType
    const: Optional[np.ndarray] = None

    @property
    def const_index_vector(self) -> Optional[Tuple[int, ...]]:
        """The constant as an index/shape vector, if it is one."""
        if self.const is None:
            return None
        array = np.asarray(self.const)
        if array.ndim == 0 and np.issubdtype(array.dtype, np.integer):
            return (int(array),)
        if array.ndim == 1 and np.issubdtype(array.dtype, np.integer):
            return tuple(int(v) for v in array)
        return None


class _Poisoned:
    """Marks a variable defined in only one branch of an if."""

    def __init__(self, name: str, span):
        self.name = name
        self.span = span


def join_types(a: SacType, b: SacType, span=None) -> SacType:
    """Least upper bound used when control flow merges definitions."""
    if a == b:
        return a
    if a.base != b.base:
        raise SacTypeError(
            f"{span or ''}: cannot merge {a} with {b} (different base types)"
        )
    dims_a, dims_b = a.full_dims(), b.full_dims()
    if dims_a is not None and dims_b is not None:
        if len(dims_a) == len(dims_b):
            merged = tuple(
                x if x == y else None for x, y in zip(dims_a, dims_b)
            )
            return SacType(a.base, merged)
        min_rank = min(len(dims_a), len(dims_b))
        return SacType(a.base, None, min_dim=min(min_rank, 1))
    min_dim = min(
        a.min_dim if a.dims is None else (a.ndim or 0),
        b.min_dim if b.dims is None else (b.ndim or 0),
    )
    return SacType(a.base, None, min_dim=min(min_dim, 1))


@dataclass
class Specialization:
    """One checked instance of a function for concrete argument types."""

    function: ast.Function
    arg_types: Tuple[SacType, ...]
    return_type: SacType


class TypeChecker:
    """Checks a module given entry-point argument types."""

    def __init__(self, module: ast.Module, defines: Optional[Dict[str, object]] = None):
        self.module = module
        self.typedefs = TypedefEnv()
        for typedef in module.typedefs:
            register_typedef(typedef.name, typedef.definition, self.typedefs)
        self.functions: Dict[str, ast.Function] = {}
        for function in module.functions:
            if function.name in self.functions:
                raise SacTypeError(f"duplicate function {function.name!r}")
            if stdlib.lookup(function.name) is not None:
                raise SacTypeError(
                    f"function {function.name!r} shadows a builtin"
                )
            self.functions[function.name] = function
        self.specializations: Dict[Tuple[str, Tuple[str, ...]], Specialization] = {}
        self._in_progress: Dict[Tuple[str, Tuple[str, ...]], SacType] = {}

        self.global_types: Dict[str, Abstract] = {}
        for name, value in (defines or {}).items():
            array = np.asarray(value)
            base = (
                "bool"
                if array.dtype == np.bool_
                else "int"
                if np.issubdtype(array.dtype, np.integer)
                else "double"
            )
            self.global_types[name] = Abstract(
                array_of(base, array.shape), array
            )
        for definition in module.globals:
            scope = Scope(dict(self.global_types))
            inferred = self.check_expr(definition.expr, scope)
            declared = from_type_expr(definition.type, self.typedefs)
            self._require_subtype(inferred.type, declared, definition.span, definition.name)
            self.global_types[definition.name] = inferred

    # ------------------------------------------------------------------
    # entry / functions
    # ------------------------------------------------------------------

    def check_all(self) -> None:
        """Check every function against its *declared* parameter types.

        This is the compile-time pass: it annotates every expression
        (with possibly partial types) and rejects provable errors even
        before any concrete call-site shapes are known.  Call-site
        specialisation still happens later through :meth:`check_entry`.
        """
        for function in self.functions.values():
            declared = tuple(
                from_type_expr(param.type, self.typedefs)
                for param in function.params
            )
            self._check_call(function, declared, span=function.span)

    def check_entry(self, name: str, arg_types: Sequence[SacType]) -> SacType:
        """Check (and specialise) an entry function for the given arg types."""
        function = self.functions.get(name)
        if function is None:
            raise SacTypeError(f"no function named {name!r}")
        return self._check_call(function, tuple(arg_types), span=function.span)

    def _check_call(
        self, function: ast.Function, arg_types: Tuple[SacType, ...], span
    ) -> SacType:
        if len(arg_types) != len(function.params):
            raise SacTypeError(
                f"{span}: {function.name} expects {len(function.params)}"
                f" arguments, got {len(arg_types)}"
            )
        declared_return = from_type_expr(function.return_type, self.typedefs)
        for arg_type, param in zip(arg_types, function.params):
            declared = from_type_expr(param.type, self.typedefs)
            if not _may_be_subtype(arg_type, declared):
                raise SacTypeError(
                    f"{span}: argument {param.name!r} of {function.name}:"
                    f" {arg_type} is not a {declared}"
                )
        key = (function.name, tuple(str(t) for t in arg_types))
        cached = self.specializations.get(key)
        if cached is not None:
            return cached.return_type
        if key in self._in_progress:  # recursion: trust the signature
            return self._in_progress[key]
        self._in_progress[key] = declared_return
        try:
            scope = Scope(dict(self.global_types))
            for param, arg_type in zip(function.params, arg_types):
                scope.define(param.name, Abstract(arg_type))
            returns: List[SacType] = []
            self._check_block(function.body, scope, returns)
            if not returns:
                raise SacTypeError(
                    f"{function.span}: {function.name} never returns"
                )
            inferred = returns[0]
            for other in returns[1:]:
                inferred = join_types(inferred, other, function.span)
            self._require_subtype(
                inferred, declared_return, function.span, f"return of {function.name}"
            )
        finally:
            del self._in_progress[key]
        self.specializations[key] = Specialization(function, arg_types, inferred)
        return inferred

    def _require_subtype(self, have: SacType, want: SacType, span, what: str) -> None:
        if not _may_be_subtype(have, want):
            raise SacTypeError(f"{span}: {what}: {have} is not a {want}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _check_block(self, statements, scope: Scope, returns: List[SacType]) -> None:
        for statement in statements:
            self._check_stmt(statement, scope, returns)

    def _check_stmt(self, statement, scope: Scope, returns: List[SacType]) -> None:
        if isinstance(statement, ast.Assign):
            if statement.name in self.global_types:
                # module constants are immutable; allowing local shadowing
                # would also break substitution-based inlining
                raise SacTypeError(
                    f"{statement.span}: cannot shadow module constant"
                    f" {statement.name!r}"
                )
            scope.define(statement.name, self.check_expr(statement.expr, scope))
        elif isinstance(statement, ast.Return):
            returns.append(self.check_expr(statement.expr, scope).type)
        elif isinstance(statement, ast.If):
            self._check_if(statement, scope, returns)
        elif isinstance(statement, (ast.For, ast.While)):
            self._check_loop(statement, scope, returns)
        else:
            raise SacTypeError(f"unknown statement {type(statement).__name__}")

    def _check_if(self, statement: ast.If, scope: Scope, returns) -> None:
        condition = self.check_expr(statement.condition, scope)
        if condition.type.base != "bool" or not condition.type.is_scalar:
            raise SacTypeError(
                f"{statement.span}: if condition must be scalar bool,"
                f" got {condition.type}"
            )
        then_scope = Scope(dict(scope.bindings), scope.parent)
        else_scope = Scope(dict(scope.bindings), scope.parent)
        self._check_block(statement.then_body, then_scope, returns)
        self._check_block(statement.else_body, else_scope, returns)

        before = set(scope.bindings)
        then_new = set(then_scope.bindings)
        else_new = set(else_scope.bindings)
        for name in then_new | else_new:
            in_then = name in then_scope.bindings
            in_else = name in else_scope.bindings
            if in_then and in_else:
                a = then_scope.bindings[name]
                b = else_scope.bindings[name]
                if isinstance(a, _Poisoned) or isinstance(b, _Poisoned):
                    scope.bindings[name] = _Poisoned(name, statement.span)
                    continue
                merged = join_types(a.type, b.type, statement.span)
                const = (
                    a.const
                    if a.const is not None
                    and b.const is not None
                    and np.array_equal(a.const, b.const)
                    else None
                )
                scope.bindings[name] = Abstract(merged, const)
            elif name in before:
                # redefined on one path only: type may have changed
                survivor = (then_scope if in_then else else_scope).bindings[name]
                if isinstance(survivor, _Poisoned):
                    scope.bindings[name] = survivor
                else:
                    scope.bindings[name] = Abstract(
                        join_types(
                            survivor.type, scope.bindings[name].type, statement.span
                        )
                    )
            else:
                scope.bindings[name] = _Poisoned(name, statement.span)

    def _check_loop(self, statement, scope: Scope, returns) -> None:
        if isinstance(statement, ast.For):
            scope.define(
                statement.init.name, self.check_expr(statement.init.expr, scope)
            )
        for _ in range(_MAX_WIDENING_ROUNDS):
            condition = self.check_expr(statement.condition, scope)
            if condition.type.base != "bool" or not condition.type.is_scalar:
                raise SacTypeError(
                    f"{statement.span}: loop condition must be scalar bool,"
                    f" got {condition.type}"
                )
            body_scope = Scope(dict(scope.bindings), scope.parent)
            self._check_block(statement.body, body_scope, returns)
            if isinstance(statement, ast.For):
                body_scope.define(
                    statement.update.name,
                    self.check_expr(statement.update.expr, body_scope),
                )
            changed = False
            for name, info in body_scope.bindings.items():
                if isinstance(info, _Poisoned):
                    scope.bindings[name] = info
                    continue
                old = scope.bindings.get(name)
                if old is None:
                    # defined only inside the loop body: poisoned after,
                    # since the loop may run zero times
                    scope.bindings[name] = _Poisoned(name, statement.span)
                    continue
                if isinstance(old, _Poisoned):
                    continue
                merged = join_types(old.type, info.type, statement.span)
                new = Abstract(
                    merged,
                    old.const
                    if old.const is not None
                    and info.const is not None
                    and np.array_equal(old.const, info.const)
                    else None,
                )
                if new != old:
                    scope.bindings[name] = new
                    changed = True
            if not changed:
                return
        raise SacTypeError(
            f"{statement.span}: loop types failed to stabilise"
        )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def check_expr(self, expr: ast.Expr, scope: Scope) -> Abstract:
        result = self._check_expr(expr, scope)
        expr.sac_type = result.type  # annotation consumed by lowering/backends
        return result

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> Abstract:
        if isinstance(expr, ast.IntLit):
            return Abstract(INT, np.int64(expr.value))
        if isinstance(expr, ast.DoubleLit):
            return Abstract(scalar("double"), np.float64(expr.value))
        if isinstance(expr, ast.BoolLit):
            return Abstract(BOOL, np.bool_(expr.value))
        if isinstance(expr, ast.Var):
            info = scope.lookup(expr.name)
            if info is None:
                raise SacTypeError(f"{expr.span}: undefined variable {expr.name!r}")
            if isinstance(info, _Poisoned):
                raise SacTypeError(
                    f"{expr.span}: variable {expr.name!r} may be undefined"
                    f" (defined in only one branch at {info.span})"
                )
            return info
        if isinstance(expr, ast.ArrayLit):
            return self._check_array_lit(expr, scope)
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr, scope)
        if isinstance(expr, ast.UnOp):
            operand = self.check_expr(expr.operand, scope)
            if expr.op == "!":
                if operand.type.base != "bool":
                    raise SacTypeError(f"{expr.span}: '!' needs bool operand")
                return Abstract(operand.type)
            const = None if operand.const is None else -np.asarray(operand.const)
            return Abstract(operand.type, const)
        if isinstance(expr, ast.Cond):
            condition = self.check_expr(expr.condition, scope)
            if condition.type.base != "bool" or not condition.type.is_scalar:
                raise SacTypeError(f"{expr.span}: '?:' condition must be scalar bool")
            then = self.check_expr(expr.then, scope)
            otherwise = self.check_expr(expr.otherwise, scope)
            return Abstract(join_types(then.type, otherwise.type, expr.span))
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call_expr(expr, scope)
        if isinstance(expr, ast.WithLoop):
            return self._check_with_loop(expr, scope)
        if isinstance(expr, ast.SetComprehension):
            return self._check_set_comprehension(expr, scope)
        raise SacTypeError(f"unknown expression {type(expr).__name__}")

    def _check_array_lit(self, expr: ast.ArrayLit, scope: Scope) -> Abstract:
        if not expr.elements:
            return Abstract(array_of("int", (0,)), np.zeros(0, dtype=np.int64))
        elements = [self.check_expr(e, scope) for e in expr.elements]
        base = elements[0].type.base
        for element in elements[1:]:
            base = join_base(base, element.type.base)
        element_dims = elements[0].type.full_dims()
        for element in elements[1:]:
            other = element.type.full_dims()
            if element_dims is not None and other is not None:
                if len(element_dims) != len(other):
                    raise SacTypeError(
                        f"{expr.span}: array literal elements have different ranks"
                    )
                element_dims = tuple(
                    x if x == y else None for x, y in zip(element_dims, other)
                )
            else:
                element_dims = None
        if element_dims is None:
            result_type = SacType(base, None, min_dim=1)
        else:
            result_type = SacType(base, (len(elements),) + tuple(element_dims))
        consts = [e.const for e in elements]
        const = None
        if all(c is not None for c in consts):
            const = np.stack([np.asarray(c) for c in consts])
        return Abstract(result_type, const)

    def _check_binop(self, expr: ast.BinOp, scope: Scope) -> Abstract:
        left = self.check_expr(expr.left, scope)
        right = self.check_expr(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            for side in (left, right):
                if side.type.base != "bool":
                    raise SacTypeError(f"{expr.span}: {op} needs bool operands")
            result_base = "bool"
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            join_base(left.type.base, right.type.base)  # just validates
            result_base = "bool"
        else:
            result_base = join_base(left.type.base, right.type.base)
            if result_base == "bool":
                raise SacTypeError(f"{expr.span}: arithmetic on bool values")

        dims = _broadcast_dims(left.type, right.type, expr.span)
        result_type = SacType(result_base, dims) if dims is not None else SacType(
            result_base, None, min_dim=1
        )
        const = None
        if left.const is not None and right.const is not None:
            from repro.errors import SacRuntimeError
            from repro.sac.interp import binary_op

            try:
                const = binary_op(op, left.const, right.const)
            except SacRuntimeError:
                const = None  # e.g. division by zero: a runtime matter
        return Abstract(result_type, const)

    def _check_index(self, expr: ast.Index, scope: Scope) -> Abstract:
        array = self.check_expr(expr.array, scope)
        index_infos = [self.check_expr(i, scope) for i in expr.indices]
        if len(expr.indices) == 1:
            index = index_infos[0]
            if index.type.is_scalar:
                depth: Optional[int] = 1
            elif index.type.ndim == 1:
                full = index.type.full_dims()
                depth = full[0] if full is not None else None
            else:
                raise SacTypeError(
                    f"{expr.span}: index must be scalar or vector, got {index.type}"
                )
            if index.type.base != "int":
                raise SacTypeError(f"{expr.span}: index must be int, got {index.type.base}")
        else:
            for info in index_infos:
                if not info.type.is_scalar or info.type.base != "int":
                    raise SacTypeError(
                        f"{expr.span}: multi-indices must be scalar ints"
                    )
            depth = len(expr.indices)

        array_dims = array.type.full_dims()
        if array_dims is None:
            result_type = SacType(array.type.base, None, min_dim=0)
        elif depth is None:
            result_type = SacType(array.type.base, None, min_dim=0)
        else:
            if depth > len(array_dims):
                raise SacTypeError(
                    f"{expr.span}: rank-{depth} index into {array.type}"
                )
            result_type = SacType(array.type.base, tuple(array_dims[depth:]))
        const = None
        if array.const is not None and all(i.const is not None for i in index_infos):
            from repro.sac.interp import Interpreter  # reuse sel semantics

            iv = (
                index_infos[0].const
                if len(index_infos) == 1
                else np.asarray([int(i.const) for i in index_infos])
            )
            try:
                const = stdlib.BUILTINS["sel"](iv, array.const)
            except Exception:
                const = None
        return Abstract(result_type, const)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _check_call_expr(self, expr: ast.Call, scope: Scope) -> Abstract:
        args = [self.check_expr(a, scope) for a in expr.args]
        function = self.functions.get(expr.name)
        if function is not None and expr.module is None:
            result = self._check_call(
                function, tuple(a.type for a in args), expr.span
            )
            return Abstract(result)
        builtin = stdlib.lookup(expr.name, expr.module)
        if builtin is None:
            raise SacTypeError(f"{expr.span}: unknown function {expr.name!r}")
        if builtin.arity is not None and builtin.arity != len(args):
            raise SacTypeError(
                f"{expr.span}: {expr.name} expects {builtin.arity} arguments,"
                f" got {len(args)}"
            )
        return self._builtin_result(expr, builtin, args)

    def _builtin_result(self, expr, builtin, args: List[Abstract]) -> Abstract:
        name = builtin.name
        # constant-fold any builtin whose arguments are all known
        if all(a.const is not None for a in args):
            try:
                value = builtin(*[a.const for a in args])
                return Abstract(_type_of_const(value), np.asarray(value))
            except Exception:
                pass

        if name == "shape":
            ndim = args[0].type.ndim
            if args[0].type.shape is not None:
                shape = np.asarray(args[0].type.shape, dtype=np.int64)
                return Abstract(array_of("int", (len(shape),)), shape)
            dims = (ndim,) if ndim is not None else (None,)
            return Abstract(SacType("int", dims))
        if name == "dim":
            ndim = args[0].type.ndim
            const = None if ndim is None else np.int64(ndim)
            return Abstract(INT, const)
        if name in ("sum", "prod", "maxval", "minval"):
            return Abstract(scalar(args[0].type.base))
        if name in ("fabs", "sqrt", "exp", "log", "sin", "cos"):
            return Abstract(SacType("double", args[0].type.dims, args[0].type.min_dim, args[0].type.suffix))
        if name in ("abs", "sign"):
            return Abstract(args[0].type)
        if name in ("min", "max", "pow"):
            dims = _broadcast_dims(args[0].type, args[1].type, expr.span)
            base = join_base(args[0].type.base, args[1].type.base)
            if name == "pow":
                base = "double"
            result = SacType(base, dims) if dims is not None else SacType(base, None, min_dim=0)
            return Abstract(result)
        if name == "tod":
            return Abstract(SacType("double", args[0].type.dims, args[0].type.min_dim, args[0].type.suffix))
        if name == "toi":
            return Abstract(SacType("int", args[0].type.dims, args[0].type.min_dim, args[0].type.suffix))
        if name in ("drop", "take"):
            return self._drop_take_type(name, expr, args)
        if name == "sel":
            return self._sel_type(expr, args[1], args[0])
        if name == "reshape":
            target = args[0].const_index_vector
            if target is not None:
                return Abstract(SacType(args[1].type.base, tuple(target)))
            length = None
            full = args[0].type.full_dims()
            if full is not None and len(full) == 1:
                length = full[0]
            if length is not None:
                return Abstract(SacType(args[1].type.base, (None,) * int(length)))
            return Abstract(SacType(args[1].type.base, None, min_dim=0))
        if name == "genarray":
            frame = args[0].const_index_vector
            element = args[1].type
            element_dims = element.full_dims()
            if frame is not None and element_dims is not None:
                return Abstract(SacType(element.base, tuple(frame) + tuple(element_dims)))
            full = args[0].type.full_dims()
            if full is not None and len(full) == 1 and full[0] is not None and element_dims is not None:
                return Abstract(
                    SacType(element.base, (None,) * int(full[0]) + tuple(element_dims))
                )
            return Abstract(SacType(element.base, None, min_dim=0))
        if name == "modarray":
            return Abstract(args[0].type)
        if name == "transpose":
            dims = args[0].type.full_dims()
            if dims is not None:
                return Abstract(SacType(args[0].type.base, tuple(reversed(dims))))
            return Abstract(args[0].type)
        # unknown shape behaviour: fall back to the registered rule or AUD
        if builtin.shape_rule is not None:
            base, dims = builtin.shape_rule(
                [(a.type.base, a.type.full_dims()) for a in args]
            )
            if dims is None:
                return Abstract(SacType(base, None, min_dim=0))
            return Abstract(SacType(base, tuple(dims)))
        return Abstract(SacType(args[0].type.base, None, min_dim=0))

    def _sel_type(self, expr, array: Abstract, index: Abstract) -> Abstract:
        array_dims = array.type.full_dims()
        depth = None
        if index.type.is_scalar:
            depth = 1
        else:
            full = index.type.full_dims()
            if full is not None and len(full) == 1:
                depth = full[0]
        if array_dims is None or depth is None:
            return Abstract(SacType(array.type.base, None, min_dim=0))
        if depth > len(array_dims):
            raise SacTypeError(f"{expr.span}: rank-{depth} sel into {array.type}")
        return Abstract(SacType(array.type.base, tuple(array_dims[depth:])))

    def _drop_take_type(self, name, expr, args: List[Abstract]) -> Abstract:
        counts = args[0].const_index_vector
        array_type = args[1].type
        dims = array_type.full_dims()
        if dims is None:
            return Abstract(SacType(array_type.base, None, min_dim=array_type.min_dim))
        if counts is not None:
            if len(counts) > len(dims):
                raise SacTypeError(
                    f"{expr.span}: {name} of {len(counts)} axes from {array_type}"
                )
            new_dims: List[Optional[int]] = []
            for axis, extent in enumerate(dims):
                if axis >= len(counts):
                    new_dims.append(extent)
                elif extent is None:
                    new_dims.append(None)
                else:
                    count = counts[axis]
                    if abs(count) > extent:
                        raise SacTypeError(
                            f"{expr.span}: {name} count {count} exceeds extent {extent}"
                        )
                    new_dims.append(
                        extent - abs(count) if name == "drop" else abs(count)
                    )
            return Abstract(SacType(array_type.base, tuple(new_dims)))
        return Abstract(SacType(array_type.base, (None,) * len(dims)))

    # ------------------------------------------------------------------
    # with-loops / set notation
    # ------------------------------------------------------------------

    def _check_with_loop(self, expr: ast.WithLoop, scope: Scope) -> Abstract:
        operation = expr.operation
        if isinstance(operation, ast.GenArray):
            shape_info = self.check_expr(operation.shape, scope)
            frame = shape_info.const_index_vector
            frame_rank = len(frame) if frame is not None else _vector_length(shape_info)
            default_info = (
                self.check_expr(operation.default, scope)
                if operation.default is not None
                else None
            )
            body_type = self._check_generators(expr.generators, frame, frame_rank, scope)
            element = body_type
            if default_info is not None:
                element = (
                    default_info.type
                    if element is None
                    else join_types(element, default_info.type, expr.span)
                )
            if element is None:
                raise SacTypeError(
                    f"{expr.span}: cannot type an empty genarray without default"
                )
            element_dims = element.full_dims()
            if frame is not None and element_dims is not None:
                return Abstract(SacType(element.base, tuple(frame) + tuple(element_dims)))
            if frame_rank is not None and element_dims is not None:
                return Abstract(
                    SacType(element.base, (None,) * frame_rank + tuple(element_dims))
                )
            return Abstract(SacType(element.base, None, min_dim=0))
        if isinstance(operation, ast.ModArray):
            source = self.check_expr(operation.array, scope)
            # a modarray generator may index a *prefix* of the array's axes
            # (assigning subarrays), so its rank is not pinned to the frame
            self._check_generators(expr.generators, None, None, scope)
            return Abstract(source.type)
        if isinstance(operation, ast.Fold):
            neutral = self.check_expr(operation.neutral, scope)
            body_type = self._check_generators(expr.generators, None, None, scope)
            result = neutral.type
            if body_type is not None:
                result = join_types(result, body_type, expr.span)
            return Abstract(result)
        raise SacTypeError("unknown with-loop operation")

    def _check_generators(
        self,
        generators: List[ast.Generator],
        frame: Optional[Tuple[int, ...]],
        frame_rank: Optional[int],
        scope: Scope,
    ) -> Optional[SacType]:
        body_type: Optional[SacType] = None
        for generator in generators:
            rank = frame_rank
            for bound in (generator.lower, generator.upper):
                if bound is None:
                    continue
                info = self.check_expr(bound, scope)
                if info.type.base != "int":
                    raise SacTypeError(
                        f"{generator.span}: generator bounds must be int vectors"
                    )
                length = info.const_index_vector
                if length is not None:
                    rank = len(length) if rank is None else rank
            if not generator.vector_var:
                if rank is not None and rank != len(generator.index_vars):
                    raise SacTypeError(
                        f"{generator.span}: {len(generator.index_vars)} index"
                        f" variables for a rank-{rank} index space"
                    )
                rank = len(generator.index_vars)
            body_scope = scope.child()
            if generator.vector_var:
                vector_dims = (rank,) if rank is not None else (None,)
                body_scope.define(
                    generator.index_vars[0], Abstract(SacType("int", vector_dims))
                )
            else:
                for name in generator.index_vars:
                    body_scope.define(name, Abstract(INT))
            this_type = self.check_expr(generator.body, body_scope).type
            body_type = (
                this_type
                if body_type is None
                else join_types(body_type, this_type, generator.span)
            )
        return body_type

    def _check_set_comprehension(self, expr: ast.SetComprehension, scope: Scope) -> Abstract:
        frame: Optional[Tuple[int, ...]] = None
        frame_rank: Optional[int] = None
        if expr.bound is not None:
            info = self.check_expr(expr.bound, scope)
            frame = info.const_index_vector
            frame_rank = len(frame) if frame is not None else _vector_length(info)
        else:
            frame_rank = self._infer_set_rank(expr, scope)
        if not expr.vector_var:
            frame_rank = len(expr.index_vars)
        body_scope = scope.child()
        if expr.vector_var:
            vector_dims = (frame_rank,) if frame_rank is not None else (None,)
            body_scope.define(expr.index_vars[0], Abstract(SacType("int", vector_dims)))
        else:
            for name in expr.index_vars:
                body_scope.define(name, Abstract(INT))
        body = self.check_expr(expr.body, body_scope)
        element_dims = body.type.full_dims()
        if frame is not None and element_dims is not None:
            return Abstract(SacType(body.type.base, tuple(frame) + tuple(element_dims)))
        if frame_rank is not None and element_dims is not None:
            return Abstract(
                SacType(body.type.base, (None,) * frame_rank + tuple(element_dims))
            )
        return Abstract(SacType(body.type.base, None, min_dim=0))

    def _infer_set_rank(self, expr: ast.SetComprehension, scope: Scope) -> Optional[int]:
        """Static mirror of the interpreter's bound inference (rank only)."""
        if not expr.vector_var:
            return len(expr.index_vars)
        name = expr.index_vars[0]
        rank: Optional[int] = None
        for node in ast.walk_expr(expr.body):
            if (
                isinstance(node, ast.Index)
                and len(node.indices) == 1
                and isinstance(node.indices[0], ast.Var)
                and node.indices[0].name == name
                and isinstance(node.array, ast.Var)
            ):
                info = scope.lookup(node.array.name)
                if isinstance(info, Abstract):
                    ndim = info.type.ndim
                    if ndim is not None:
                        rank = ndim if rank is None else min(rank, ndim)
        return rank


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _may_be_subtype(have: SacType, want: SacType) -> bool:
    """True unless ``have`` provably fails to be a ``want``.

    Partial types (AKD/AUD) pass when some concrete refinement could be
    a subtype; the runtime re-checks concretely.
    """
    if have.base != want.base:
        return False
    if is_subtype(have, want):
        return True
    have_dims, want_dims = have.full_dims(), want.full_dims()
    if have_dims is None or want_dims is None:
        # at least one side has unknown rank: compatible unless the known
        # rank contradicts a minimum
        if have_dims is not None and want.dims is None:
            return len(have_dims) >= want.min_dim + len(want.suffix)
        return True
    if len(have_dims) != len(want_dims):
        return False
    return all(
        h is None or w is None or h == w for h, w in zip(have_dims, want_dims)
    )


def _broadcast_dims(left: SacType, right: SacType, span):
    """Result dims of an elementwise op (scalar/array and array/array)."""
    left_dims, right_dims = left.full_dims(), right.full_dims()
    if left_dims == ():
        return right_dims
    if right_dims == ():
        return left_dims
    if left_dims is None or right_dims is None:
        return None
    # NumPy-style trailing broadcast (a strict SaC would require equality;
    # the relaxation is documented in the README)
    result: List[Optional[int]] = []
    for offset in range(1, max(len(left_dims), len(right_dims)) + 1):
        l = left_dims[-offset] if offset <= len(left_dims) else 1
        r = right_dims[-offset] if offset <= len(right_dims) else 1
        if l is None or r is None:
            result.append(None)
        elif l == r or l == 1 or r == 1:
            result.append(max(l, r))
        else:
            raise SacTypeError(
                f"{span}: shapes {left} and {right} do not broadcast"
            )
    return tuple(reversed(result))


def _vector_length(info: Abstract) -> Optional[int]:
    full = info.type.full_dims()
    if full is not None and len(full) == 1 and full[0] is not None:
        return int(full[0])
    return None


def _type_of_const(value) -> SacType:
    array = np.asarray(value)
    if array.dtype == np.bool_:
        base = "bool"
    elif np.issubdtype(array.dtype, np.integer):
        base = "int"
    else:
        base = "double"
    return array_of(base, array.shape)
