"""Symbol tables for the SaC type checker.

SaC function bodies have a single flat scope (bindings are
definitions, not mutations); with-loop index variables shadow inside
generator bodies.  :class:`Scope` models exactly that: a chain of
frames with lookup walking outward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class Scope:
    """One lexical frame; ``parent`` chains to the enclosing frame."""

    bindings: Dict[str, object] = field(default_factory=dict)
    parent: Optional["Scope"] = None

    def child(self) -> "Scope":
        return Scope(parent=self)

    def define(self, name: str, info: object) -> None:
        self.bindings[name] = info

    def lookup(self, name: str) -> Optional[object]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def names(self) -> Iterator[str]:
        """All visible names, innermost first."""
        seen = set()
        scope: Optional[Scope] = self
        while scope is not None:
            for name in scope.bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            scope = scope.parent
