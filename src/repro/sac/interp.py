"""Reference interpreter for the SaC subset (AST level).

This is the *semantic definition* of the language: simple, direct and
slow.  The optimising pipeline and the NumPy backend are validated
against it — every optimisation must leave a program's interpreted
meaning unchanged, which the property-based tests check by running both
executors on the same inputs.

Evaluation notes
----------------
* arithmetic maps elementwise over arrays with NumPy broadcasting (the
  paper: "small arithmetic expressions in SaC can operate on whole
  arrays"); ``/`` and ``%`` on ints truncate towards zero, C-style;
* a with-loop's generators are iterated in row-major order; genarray
  without a default requires its generators to cover the index space;
* set notation bounds, when not given explicitly, are inferred from the
  plain indexings of the body exactly as described in
  :func:`infer_set_bounds`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SacRuntimeError
from repro.sac import ast
from repro.sac import stdlib
from repro.sac import values as V

#: SaC-level call depth bound; kept well under Python's own recursion
#: limit (each SaC frame costs several interpreter frames)
MAX_CALL_DEPTH = 64


class _ReturnSignal(Exception):
    """Internal control flow for ``return``."""

    def __init__(self, value):
        self.value = value


def binary_op(op: str, left, right):
    """Elementwise binary operation with SaC/C semantics."""
    left = np.asarray(left)
    right = np.asarray(right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if np.issubdtype(left.dtype, np.integer) and np.issubdtype(
            right.dtype, np.integer
        ):
            if np.any(right == 0):
                raise SacRuntimeError("integer division by zero")
            quotient = np.trunc(left / right)
            return quotient.astype(np.int64)[()] if quotient.ndim == 0 else quotient.astype(np.int64)
        return left / right
    if op == "%":
        if np.any(np.asarray(right) == 0):
            raise SacRuntimeError("modulo by zero")
        return np.fmod(left, right)
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "&&":
        return np.logical_and(left, right)
    if op == "||":
        return np.logical_or(left, right)
    raise SacRuntimeError(f"unknown binary operator {op!r}")


def unary_op(op: str, operand):
    operand = np.asarray(operand)
    if op == "-":
        return -operand
    if op == "!":
        return np.logical_not(operand)
    raise SacRuntimeError(f"unknown unary operator {op!r}")


def _scalar_bool(value, context: str) -> bool:
    array = np.asarray(value)
    if array.ndim != 0:
        raise SacRuntimeError(f"{context}: condition must be a scalar, got shape {array.shape}")
    return bool(array)


class Interpreter:
    """Evaluates a checked (or unchecked) SaC module."""

    def __init__(self, module: ast.Module, defines: Optional[Dict[str, object]] = None):
        self.module = module
        self.functions: Dict[str, ast.Function] = {}
        for function in module.functions:
            if function.name in self.functions:
                raise SacRuntimeError(f"duplicate function {function.name!r}")
            self.functions[function.name] = function
        self.globals: Dict[str, np.ndarray] = {}
        for name, value in (defines or {}).items():
            self.globals[name] = V.to_value(value)
        for definition in module.globals:
            self.globals[definition.name] = self.eval_expr(
                definition.expr, dict(self.globals)
            )
        self._depth = 0

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def call(self, name: str, *host_args):
        """Call a SaC function with host (Python/NumPy) arguments."""
        function = self.functions.get(name)
        if function is None:
            raise SacRuntimeError(f"no function named {name!r}")
        args = [V.to_value(a) for a in host_args]
        return self.call_function(function, args)

    def call_function(self, function: ast.Function, args: Sequence[np.ndarray]):
        if len(args) != len(function.params):
            raise SacRuntimeError(
                f"{function.name}: expected {len(function.params)} arguments,"
                f" got {len(args)}"
            )
        if self._depth >= MAX_CALL_DEPTH:
            raise SacRuntimeError(f"call depth exceeded in {function.name!r}")
        env: Dict[str, np.ndarray] = dict(self.globals)
        for param, arg in zip(function.params, args):
            env[param.name] = arg
        self._depth += 1
        try:
            self.exec_block(function.body, env)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._depth -= 1
        raise SacRuntimeError(f"{function.name}: fell off the end without return")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def exec_block(self, statements: List[ast.Stmt], env: Dict) -> None:
        for statement in statements:
            self.exec_stmt(statement, env)

    def exec_stmt(self, statement: ast.Stmt, env: Dict) -> None:
        if isinstance(statement, ast.Assign):
            env[statement.name] = self.eval_expr(statement.expr, env)
        elif isinstance(statement, ast.Return):
            raise _ReturnSignal(self.eval_expr(statement.expr, env))
        elif isinstance(statement, ast.If):
            if _scalar_bool(self.eval_expr(statement.condition, env), "if"):
                self.exec_block(statement.then_body, env)
            else:
                self.exec_block(statement.else_body, env)
        elif isinstance(statement, ast.For):
            env[statement.init.name] = self.eval_expr(statement.init.expr, env)
            while _scalar_bool(self.eval_expr(statement.condition, env), "for"):
                self.exec_block(statement.body, env)
                env[statement.update.name] = self.eval_expr(statement.update.expr, env)
        elif isinstance(statement, ast.While):
            while _scalar_bool(self.eval_expr(statement.condition, env), "while"):
                self.exec_block(statement.body, env)
        else:
            raise SacRuntimeError(f"unknown statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, env: Dict):
        if isinstance(expr, ast.IntLit):
            return np.int64(expr.value)
        if isinstance(expr, ast.DoubleLit):
            return np.float64(expr.value)
        if isinstance(expr, ast.BoolLit):
            return np.bool_(expr.value)
        if isinstance(expr, ast.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise SacRuntimeError(
                    f"{expr.span}: undefined variable {expr.name!r}"
                ) from None
        if isinstance(expr, ast.ArrayLit):
            elements = [self.eval_expr(e, env) for e in expr.elements]
            if not elements:
                return np.zeros(0, dtype=np.int64)
            return np.stack([np.asarray(e) for e in elements])
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            return self.apply_binop(expr.op, left, right)
        if isinstance(expr, ast.UnOp):
            return self.apply_unop(expr.op, self.eval_expr(expr.operand, env))
        if isinstance(expr, ast.Cond):
            if _scalar_bool(self.eval_expr(expr.condition, env), "?:"):
                return self.eval_expr(expr.then, env)
            return self.eval_expr(expr.otherwise, env)
        if isinstance(expr, ast.Index):
            array = self.eval_expr(expr.array, env)
            indices = [self.eval_expr(i, env) for i in expr.indices]
            return self._select(array, indices, expr)
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        if isinstance(expr, ast.WithLoop):
            return self.eval_with_loop(expr, env)
        if isinstance(expr, ast.SetComprehension):
            return self.eval_set_comprehension(expr, env)
        raise SacRuntimeError(f"unknown expression {type(expr).__name__}")

    def _select(self, array, indices, expr: ast.Index):
        if len(indices) == 1:
            iv = indices[0]
        else:
            iv = np.asarray([int(np.asarray(i)) for i in indices], dtype=np.int64)
        try:
            return stdlib.BUILTINS["sel"](iv, array)
        except SacRuntimeError as error:
            raise SacRuntimeError(f"{expr.span}: {error}") from None

    def _call(self, expr: ast.Call, env: Dict):
        function = self.functions.get(expr.name)
        if function is not None and expr.module is None:
            args = [self.eval_expr(a, env) for a in expr.args]
            return self.call_function(function, args)
        builtin = stdlib.lookup(expr.name, expr.module)
        if builtin is None:
            raise SacRuntimeError(f"{expr.span}: unknown function {expr.name!r}")
        if builtin.arity is not None and builtin.arity != len(expr.args):
            raise SacRuntimeError(
                f"{expr.span}: {expr.name} expects {builtin.arity} arguments,"
                f" got {len(expr.args)}"
            )
        args = [self.eval_expr(a, env) for a in expr.args]
        return self.apply_builtin(builtin, args)

    # ------------------------------------------------------------------
    # operator hooks (the NumPy backend overrides these to record trace
    # regions; the reference interpreter just applies the operation)
    # ------------------------------------------------------------------

    def apply_binop(self, op: str, left, right):
        return binary_op(op, left, right)

    def apply_unop(self, op: str, operand):
        return unary_op(op, operand)

    def apply_builtin(self, builtin, args):
        return builtin(*args)

    # ------------------------------------------------------------------
    # with-loops
    # ------------------------------------------------------------------

    def eval_with_loop(self, expr: ast.WithLoop, env: Dict):
        operation = expr.operation
        if isinstance(operation, ast.GenArray):
            frame = V.as_index_vector(
                self.eval_expr(operation.shape, env), "genarray shape"
            )
            default = (
                self.eval_expr(operation.default, env)
                if operation.default is not None
                else None
            )
            return self._eval_genarray(expr, frame, default, env)
        if isinstance(operation, ast.ModArray):
            source = np.asarray(self.eval_expr(operation.array, env))
            result = source.copy()
            rank = self._generator_rank(expr.generators, default=source.ndim)
            for iv, value in self._generate(expr.generators, source.shape[:rank], env):
                result[iv] = value
            return result
        if isinstance(operation, ast.Fold):
            return self._eval_fold(expr, operation, env)
        raise SacRuntimeError("unknown with-loop operation")

    def _eval_genarray(self, expr, frame, default, env):
        first_value = None
        updates = []
        for iv, value in self._generate(expr.generators, frame, env):
            if first_value is None:
                first_value = np.asarray(value)
            updates.append((iv, value))
        if first_value is None and default is None:
            raise SacRuntimeError(
                f"{expr.span}: empty genarray with no default"
            )
        element = first_value if first_value is not None else np.asarray(default)
        shape = tuple(frame) + element.shape
        if default is not None:
            result = np.broadcast_to(np.asarray(default), shape).astype(element.dtype).copy()
        else:
            result = np.zeros(shape, dtype=element.dtype)
        for iv, value in updates:
            result[iv] = value
        return result

    def _eval_fold(self, expr, operation: ast.Fold, env: Dict):
        accumulator = np.asarray(self.eval_expr(operation.neutral, env))
        frame = self._fold_frame(expr.generators, env)
        for iv, value in self._generate(expr.generators, frame, env):
            accumulator = self._fold_combine(operation.op, accumulator, value)
        return accumulator

    @staticmethod
    def _fold_combine(op: str, accumulator, value):
        if op == "+":
            return accumulator + value
        if op == "*":
            return accumulator * value
        if op == "max":
            return np.maximum(accumulator, value)
        if op == "min":
            return np.minimum(accumulator, value)
        raise SacRuntimeError(f"unknown fold operator {op!r}")

    @staticmethod
    def _generator_rank(generators: List[ast.Generator], default: int) -> int:
        for generator in generators:
            if not generator.vector_var:
                return len(generator.index_vars)
            if generator.lower is not None or generator.upper is not None:
                continue
        return default

    def _fold_frame(self, generators, env) -> Tuple[int, ...]:
        """Fold has no frame array, so bounds must come from the generators."""
        for generator in generators:
            if generator.upper is None:
                raise SacRuntimeError(
                    f"{generator.span}: fold generators need explicit bounds"
                )
        # frame big enough for all generators (used only as the '.' default,
        # which explicit bounds make unnecessary here)
        return ()

    def _generate(self, generators, frame, env):
        """Yield (index_tuple, body_value) for every generator, in order."""
        for generator in generators:
            lower, upper = self._bounds(generator, frame, env)
            rank = len(lower)
            if not generator.vector_var and len(generator.index_vars) != rank:
                raise SacRuntimeError(
                    f"{generator.span}: {len(generator.index_vars)} index variables"
                    f" for a rank-{rank} index space"
                )
            for iv in _index_space(lower, upper):
                local = env  # SaC scoping: index vars shadow, body can read env
                saved = {}
                names = generator.index_vars
                if generator.vector_var:
                    saved[names[0]] = local.get(names[0])
                    local[names[0]] = np.asarray(iv, dtype=np.int64)
                else:
                    for name, position in zip(names, iv):
                        saved[name] = local.get(name)
                        local[name] = np.int64(position)
                try:
                    value = self.eval_expr(generator.body, local)
                finally:
                    for name, old in saved.items():
                        if old is None:
                            local.pop(name, None)
                        else:
                            local[name] = old
                yield iv, value

    def _bounds(self, generator: ast.Generator, frame, env):
        if generator.lower is None:
            lower = [0] * len(frame)
        else:
            lower = list(
                V.as_index_vector(self.eval_expr(generator.lower, env), "lower bound")
            )
            if generator.lower_inclusive is False:
                lower = [b + 1 for b in lower]
        if generator.upper is None:
            upper = list(frame)
        else:
            upper = list(
                V.as_index_vector(self.eval_expr(generator.upper, env), "upper bound")
            )
            if generator.upper_inclusive:
                upper = [b + 1 for b in upper]
        if len(lower) != len(upper):
            if generator.lower is None:
                lower = [0] * len(upper)
            elif generator.upper is None:
                upper = list(frame)[: len(lower)]
        if len(lower) != len(upper):
            raise SacRuntimeError(
                f"{generator.span}: bound ranks differ ({len(lower)} vs {len(upper)})"
            )
        return tuple(lower), tuple(upper)

    # ------------------------------------------------------------------
    # set notation
    # ------------------------------------------------------------------

    def eval_set_comprehension(self, expr: ast.SetComprehension, env: Dict):
        if expr.bound is not None:
            frame = V.as_index_vector(self.eval_expr(expr.bound, env), "set bound")
            if expr.vector_var and len(expr.index_vars) == 1:
                rank = len(frame)
            else:
                rank = len(expr.index_vars)
                if len(frame) != rank:
                    raise SacRuntimeError(
                        f"{expr.span}: bound rank {len(frame)} != {rank} index vars"
                    )
        else:
            frame = infer_set_bounds(expr, env, self)
        generator = ast.Generator(
            index_vars=expr.index_vars,
            vector_var=expr.vector_var,
            lower=None,
            upper=None,
            lower_inclusive=True,
            upper_inclusive=False,
            body=expr.body,
            span=expr.span,
        )
        loop = ast.WithLoop(
            generators=[generator],
            operation=ast.GenArray(
                shape=ast.ArrayLit([ast.IntLit(int(f)) for f in frame], expr.span),
                default=None,
                span=expr.span,
            ),
            span=expr.span,
        )
        return self.eval_with_loop(loop, env)


def infer_set_bounds(expr: ast.SetComprehension, env: Dict, interp: Interpreter):
    """Infer the index space of set notation from the body's indexings.

    Rule: for every plain indexing ``a[..., v, ...]`` where ``v`` is a
    set variable at axis ``k``, axis ``k``'s extent of ``a`` bounds
    ``v``; for a vector variable ``iv``, every ``a[iv]`` bounds ``iv``
    by the leading extents of ``a`` and fixes its length to the
    *smallest* rank among such arrays.  Extents are min-combined.
    Raises when a variable gets no bound (use the explicit ``| iv <
    shape`` form then).
    """
    set_vars = set(expr.index_vars)
    array_cache: Dict[int, np.ndarray] = {}

    def shape_of_array(node: ast.Expr):
        key = id(node)
        if key not in array_cache:
            array_cache[key] = np.asarray(interp.eval_expr(node, env))
        return array_cache[key].shape

    if expr.vector_var:
        name = expr.index_vars[0]
        rank: Optional[int] = None
        extents: List[int] = []
        for node in ast.walk_expr(expr.body):
            if (
                isinstance(node, ast.Index)
                and len(node.indices) == 1
                and isinstance(node.indices[0], ast.Var)
                and node.indices[0].name == name
            ):
                if _mentions(node.array, set_vars):
                    continue
                shape = shape_of_array(node.array)
                rank = len(shape) if rank is None else min(rank, len(shape))
        if rank is None:
            raise SacRuntimeError(
                f"{expr.span}: cannot infer bounds for set variable {name!r}"
            )
        extents = [np.inf] * rank  # type: ignore[list-item]
        for node in ast.walk_expr(expr.body):
            if (
                isinstance(node, ast.Index)
                and len(node.indices) == 1
                and isinstance(node.indices[0], ast.Var)
                and node.indices[0].name == name
                and not _mentions(node.array, set_vars)
            ):
                shape = shape_of_array(node.array)
                for axis in range(rank):
                    extents[axis] = min(extents[axis], shape[axis])
        return tuple(int(e) for e in extents)

    bounds: Dict[str, int] = {}
    for node in ast.walk_expr(expr.body):
        if not isinstance(node, ast.Index) or _mentions(node.array, set_vars):
            continue
        for axis, index in enumerate(node.indices):
            if isinstance(index, ast.Var) and index.name in set_vars:
                shape = shape_of_array(node.array)
                if axis >= len(shape):
                    continue
                current = bounds.get(index.name)
                extent = int(shape[axis])
                bounds[index.name] = extent if current is None else min(current, extent)
    missing = [v for v in expr.index_vars if v not in bounds]
    if missing:
        raise SacRuntimeError(
            f"{expr.span}: cannot infer bounds for set variable(s) {missing};"
            " use the explicit '| [i,...] < shape' form"
        )
    return tuple(bounds[v] for v in expr.index_vars)


def _mentions(expr: ast.Expr, names) -> bool:
    return any(
        isinstance(node, ast.Var) and node.name in names for node in ast.walk_expr(expr)
    )


def _index_space(lower: Tuple[int, ...], upper: Tuple[int, ...]):
    """Row-major iteration of the half-open box [lower, upper)."""
    if len(lower) == 0:
        yield ()
        return
    if any(u <= l for l, u in zip(lower, upper)):
        return
    ranges = [range(l, u) for l, u in zip(lower, upper)]
    indices = [r.start for r in ranges]
    rank = len(ranges)
    while True:
        yield tuple(indices)
        axis = rank - 1
        while axis >= 0:
            indices[axis] += 1
            if indices[axis] < ranges[axis].stop:
                break
            indices[axis] = ranges[axis].start
            axis -= 1
        if axis < 0:
            return
