"""Multithreaded with-loop scheduler.

Splits a with-loop's index space along its outermost axis into one
chunk per worker (static scheduling, like the SaC pthread backend) and
executes the chunks on real Python threads joined by a
:class:`SpinBarrier`.  NumPy kernels release the GIL, so large chunks
do overlap; small loops are executed inline because parallelising them
costs more than they are worth — the scheduler applies a minimum
elements-per-thread threshold, again mirroring the real runtime.

Fold with-loops are only parallelised when ``parallel_folds`` is
enabled; the paper's benchmark passes ``-nofoldparallel``, so the
default here is serial folds (which also keeps floating-point results
bit-identical to the reference interpreter).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SacRuntimeError
from repro.sac.runtime.spinlock import SpinBarrier

#: Below this many elements per worker a loop runs inline.
MIN_ELEMENTS_PER_THREAD = 1024

Bounds = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass
class SchedulerOptions:
    threads: int = 1
    parallel_folds: bool = False  # the paper passes -nofoldparallel
    min_elements_per_thread: int = MIN_ELEMENTS_PER_THREAD


#: One contiguous half-open interval [lo, hi) of a partitioned extent.
Interval = Tuple[int, int]


def split_extent(lower: int, upper: int, parts: int, min_size: int = 1) -> List[Interval]:
    """Static partition of the interval ``[lower, upper)`` into chunks.

    The single chunking implementation shared by the with-loop scheduler
    (axis-0 chunks, one per worker) and the domain-decomposition runtime
    (:mod:`repro.par.partition`, which applies it per grid axis).  At
    most ``parts`` contiguous chunks are produced, sizes differing by at
    most one (the remainder goes to the leading chunks, like the SaC
    static scheduler); no chunk is smaller than ``min_size`` (the
    partitioner passes the halo width here so every subdomain can feed
    its neighbours' ghost cells).  A zero or negative extent yields no
    chunks.
    """
    extent = upper - lower
    if extent <= 0:
        return []
    min_size = max(1, min_size)
    parts = max(1, min(parts, extent // min_size if extent >= min_size else 1))
    base = extent // parts
    remainder = extent % parts
    chunks: List[Interval] = []
    start = lower
    for part in range(parts):
        size = base + (1 if part < remainder else 0)
        chunks.append((start, start + size))
        start += size
    return chunks


def split_bounds(lower: Sequence[int], upper: Sequence[int], parts: int) -> List[Bounds]:
    """Static partition of a box along axis 0 into up to ``parts`` chunks."""
    if not lower:
        return [(tuple(lower), tuple(upper))]
    return [
        ((lo,) + tuple(lower[1:]), (hi,) + tuple(upper[1:]))
        for lo, hi in split_extent(lower[0], upper[0], parts)
    ]


def box_elements(lower: Sequence[int], upper: Sequence[int]) -> int:
    total = 1
    for low, high in zip(lower, upper):
        total *= max(0, high - low)
    return total


class WithLoopScheduler:
    """Runs chunk evaluators across a worker team."""

    def __init__(self, options: Optional[SchedulerOptions] = None):
        self.options = options or SchedulerOptions()

    def run(
        self,
        lower: Tuple[int, ...],
        upper: Tuple[int, ...],
        evaluate_chunk: Callable[[Tuple[int, ...], Tuple[int, ...]], None],
        is_fold: bool = False,
    ) -> int:
        """Execute ``evaluate_chunk`` over a partition of [lower, upper).

        Returns the number of workers actually used.  ``evaluate_chunk``
        must write its results into pre-allocated shared storage (the
        chunks are disjoint, so no locking is needed — single
        assignment at work).
        """
        threads = self.options.threads
        elements = box_elements(lower, upper)
        if (
            threads <= 1
            or (is_fold and not self.options.parallel_folds)
            or elements < self.options.min_elements_per_thread * 2
        ):
            evaluate_chunk(lower, upper)
            return 1

        max_workers = max(
            1, min(threads, elements // self.options.min_elements_per_thread)
        )
        chunks = split_bounds(lower, upper, max_workers)
        if len(chunks) <= 1:
            evaluate_chunk(lower, upper)
            return 1

        barrier = SpinBarrier(len(chunks))
        errors: List[BaseException] = []
        error_lock = threading.Lock()

        def worker(chunk: Bounds) -> None:
            try:
                evaluate_chunk(chunk[0], chunk[1])
            except BaseException as error:  # noqa: BLE001 - reported below
                with error_lock:
                    errors.append(error)
            finally:
                barrier.wait()

        team = [
            threading.Thread(target=worker, args=(chunk,), daemon=True)
            for chunk in chunks[1:]
        ]
        for thread in team:
            thread.start()
        worker(chunks[0])
        for thread in team:
            thread.join()
        if errors:
            first = errors[0]
            if isinstance(first, SacRuntimeError):
                raise first
            raise SacRuntimeError(f"worker failed: {first}") from first
        return len(chunks)
