"""Executors: the reference interpreter lives in ``repro.sac.interp``;
this package holds the vectorising NumPy backend and its scheduler."""

from repro.sac.eval.numpy_backend import Batched, NumpyEvaluator
from repro.sac.eval.scheduler import (
    SchedulerOptions,
    WithLoopScheduler,
    box_elements,
    split_bounds,
    split_extent,
)

__all__ = [
    "Batched",
    "NumpyEvaluator",
    "SchedulerOptions",
    "WithLoopScheduler",
    "box_elements",
    "split_bounds",
    "split_extent",
]
