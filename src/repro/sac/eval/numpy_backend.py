"""Vectorising NumPy backend — the "compiled" SaC executor.

With-loop bodies are evaluated *for all indices at once*: index
variables become index grids, selections become gathers (or, after the
optimiser has done its work, contiguous slices), and scalar arithmetic
becomes whole-array arithmetic.  Anything the vectoriser cannot handle
(user calls on index-dependent data, nested index-dependent
with-loops) falls back to the reference interpreter's element loop, so
the backend is *always* semantically equivalent — just faster where it
matters.

Every array operation and with-loop execution is recorded in an
:class:`ExecutionTrace`; the multithreaded scheduler really does run
chunks on a worker team synchronised by spin barriers.

Batched values
--------------
A :class:`Batched` wraps an ndarray whose leading ``box_rank`` axes
range over the with-loop's index space and whose trailing axes are the
per-element value (SaC values can be arrays themselves — ``fluid_cv``
elements are 4-vectors).  Mixed batched/plain arithmetic aligns the
element axes explicitly, which is what makes expressions like
``(d[iv] + c[iv]) / DELTA`` from the paper's ``getDt`` vectorise even
though ``d[iv]`` is a 2-vector and ``c[iv]`` a scalar.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SacRuntimeError
from repro.sac import ast
from repro.sac import stdlib
from repro.sac.interp import Interpreter, binary_op, unary_op
from repro.sac.runtime.profiler import ExecutionTrace
from repro.sac.eval.scheduler import (
    SchedulerOptions,
    WithLoopScheduler,
    box_elements,
)

_ELEMENTWISE_BUILTINS = {
    "fabs", "sqrt", "exp", "log", "sin", "cos", "abs", "sign",
    "min", "max", "pow", "tod", "toi",
}
_REDUCTION_BUILTINS = {"sum", "prod", "maxval", "minval"}

_REDUCERS = {
    "sum": np.add.reduce,
    "prod": np.multiply.reduce,
    "maxval": np.maximum.reduce,
    "minval": np.minimum.reduce,
}


class VectorEvalError(Exception):
    """Internal: the vectoriser met a construct it cannot handle."""


class Batched:
    """An array of per-index values over a with-loop box."""

    __slots__ = ("data", "box_rank")

    def __init__(self, data: np.ndarray, box_rank: int):
        self.data = np.asarray(data)
        self.box_rank = box_rank

    @property
    def element_rank(self) -> int:
        return self.data.ndim - self.box_rank

    def expanded(self, element_rank: int) -> np.ndarray:
        """Data with element axes padded (after the box axes) to a rank."""
        missing = element_rank - self.element_rank
        if missing <= 0:
            return self.data
        index: List[object] = [slice(None)] * self.box_rank
        index += [None] * missing
        index += [slice(None)] * self.element_rank
        return self.data[tuple(index)]


def _count_ops(expr: ast.Expr) -> int:
    """Operation-count proxy for a with-loop body (for the cost model)."""
    count = 0
    for node in ast.walk_expr(expr):
        if isinstance(node, (ast.BinOp, ast.UnOp, ast.Cond)):
            count += 1
        elif isinstance(node, ast.Call):
            count += 2
        elif isinstance(node, ast.Index):
            count += 1
    return max(count, 1)


def _count_reads(expr: ast.Expr) -> int:
    return sum(1 for node in ast.walk_expr(expr) if isinstance(node, ast.Index))


class NumpyEvaluator(Interpreter):
    """Interpreter subclass with vectorised with-loops and trace recording."""

    def __init__(
        self,
        module: ast.Module,
        defines: Optional[Dict[str, object]] = None,
        trace: Optional[ExecutionTrace] = None,
        scheduler: Optional[SchedulerOptions] = None,
    ):
        self.trace = trace if trace is not None else ExecutionTrace(enabled=False)
        self.scheduler = WithLoopScheduler(scheduler)
        self._suppress_elementwise = 0
        self._body_ops_cache: Dict[int, Tuple[int, int]] = {}
        super().__init__(module, defines)

    # ------------------------------------------------------------------
    # operator hooks: record array operations as parallel regions
    # ------------------------------------------------------------------

    def apply_binop(self, op: str, left, right):
        result = binary_op(op, left, right)
        self._record_elementwise(result, operands=2, label=f"binop:{op}")
        return result

    def apply_unop(self, op: str, operand):
        result = unary_op(op, operand)
        self._record_elementwise(result, operands=1, label=f"unop:{op}")
        return result

    def apply_builtin(self, builtin, args):
        result = builtin(*args)
        if builtin.name in _ELEMENTWISE_BUILTINS:
            self._record_elementwise(result, operands=len(args), label=builtin.name)
        elif builtin.name in _REDUCTION_BUILTINS and self._suppress_elementwise == 0:
            size = int(np.asarray(args[0]).size)
            if size > 1:
                self.trace.record(
                    "reduction", size, 1.0, size * 8, label=builtin.name
                )
        return result

    def _record_elementwise(self, result, operands: int, label: str) -> None:
        if self._suppress_elementwise:
            return
        array = np.asarray(result)
        if array.ndim == 0 or array.size <= 1:
            return
        self.trace.record(
            "elementwise",
            array.size,
            1.0,
            array.size * 8 * (operands + 1),
            label=label,
        )

    # ------------------------------------------------------------------
    # with-loops
    # ------------------------------------------------------------------

    def eval_with_loop(self, expr: ast.WithLoop, env: Dict):
        try:
            return self._vectorised_with_loop(expr, env)
        except VectorEvalError:
            return self._fallback_with_loop(expr, env)

    def _fallback_with_loop(self, expr: ast.WithLoop, env: Dict):
        self._suppress_elementwise += 1
        try:
            result = super().eval_with_loop(expr, env)
        finally:
            self._suppress_elementwise -= 1
        array = np.asarray(result)
        self.trace.record(
            "with_loop",
            max(array.size, 1),
            4.0,
            array.size * 8 * 2,
            label="with_loop(fallback)",
        )
        return result

    def _vectorised_with_loop(self, expr: ast.WithLoop, env: Dict):
        operation = expr.operation
        if isinstance(operation, ast.GenArray):
            frame = self._index_vector(operation.shape, env, "genarray shape")
            default = (
                self.eval_expr(operation.default, env)
                if operation.default is not None
                else None
            )
            return self._vector_genarray(expr, frame, default, env)
        if isinstance(operation, ast.ModArray):
            source = np.asarray(self.eval_expr(operation.array, env))
            if getattr(expr, "reuse_in_place", False) and source.flags.writeable:
                result = source
            else:
                result = source.copy()
            rank = self._generator_rank(expr.generators, default=source.ndim)
            for generator in expr.generators:
                lower, upper = self._bounds(generator, source.shape[:rank], env)
                self._run_generator(generator, lower, upper, result, env)
            return result
        if isinstance(operation, ast.Fold):
            return self._vector_fold(expr, operation, env)
        raise SacRuntimeError("unknown with-loop operation")

    def _index_vector(self, expr: ast.Expr, env, context: str) -> Tuple[int, ...]:
        from repro.sac import values as V

        return V.as_index_vector(self.eval_expr(expr, env), context)

    # -- genarray ---------------------------------------------------------

    def _vector_genarray(self, expr, frame, default, env):
        result: Optional[np.ndarray] = None
        for generator in expr.generators:
            lower, upper = self._bounds(generator, frame, env)
            if result is None:
                element = self._probe_element(generator, lower, upper, env, default)
                if element is None:
                    raise SacRuntimeError(f"{expr.span}: empty genarray with no default")
                shape = tuple(frame) + element.shape
                if default is not None:
                    result = (
                        np.broadcast_to(np.asarray(default), shape)
                        .astype(element.dtype)
                        .copy()
                    )
                else:
                    result = np.zeros(shape, dtype=element.dtype)
            self._run_generator(generator, lower, upper, result, env)
        if result is None:  # no generators at all
            if default is None:
                raise SacRuntimeError(f"{expr.span}: empty genarray with no default")
            element = np.asarray(default)
            return np.broadcast_to(element, tuple(frame) + element.shape).copy()
        return result

    def _probe_element(self, generator, lower, upper, env, default):
        """Element dtype/shape from a single-index evaluation (or default)."""
        if box_elements(lower, upper) == 0:
            return None if default is None else np.asarray(default)
        probe_upper = tuple(l + 1 for l in lower)
        value = self._eval_body_over_box(generator, lower, probe_upper, env)
        element = np.asarray(value.data)[(0,) * value.box_rank]
        return np.asarray(element)

    def _run_generator(self, generator, lower, upper, result, env) -> None:
        """Vector-evaluate one generator and write it into ``result``."""
        ops, reads = self._body_costs(generator.body)
        elements = box_elements(lower, upper)
        if elements == 0:
            return
        element_size = int(np.prod(result.shape[len(lower):], dtype=np.int64)) or 1

        def chunk(chunk_lower, chunk_upper):
            value = self._eval_body_over_box(generator, chunk_lower, chunk_upper, env)
            window = tuple(
                slice(low, high) for low, high in zip(chunk_lower, chunk_upper)
            )
            data = value.expanded(result.ndim - len(lower))
            result[window] = data

        self.scheduler.run(tuple(lower), tuple(upper), chunk)
        self.trace.record(
            "with_loop",
            elements,
            float(ops),
            elements * element_size * 8 * (reads + 1),
            label="with_loop",
        )

    # -- fold ---------------------------------------------------------------

    def _vector_fold(self, expr, operation: ast.Fold, env):
        accumulator = np.asarray(self.eval_expr(operation.neutral, env))
        for generator in expr.generators:
            if generator.upper is None:
                raise SacRuntimeError(
                    f"{generator.span}: fold generators need explicit bounds"
                )
            lower, upper = self._bounds(generator, (), env)
            elements = box_elements(lower, upper)
            if elements == 0:
                continue
            value = self._eval_body_over_box(generator, lower, upper, env)
            box_axes = tuple(range(value.box_rank))
            reducer_name = {"+": "sum", "*": "prod", "max": "maxval", "min": "minval"}[
                operation.op
            ]
            reducer = _REDUCERS[reducer_name]
            reduced = reducer(value.data, axis=box_axes) if box_axes else value.data
            if operation.op == "+":
                accumulator = accumulator + reduced
            elif operation.op == "*":
                accumulator = accumulator * reduced
            elif operation.op == "max":
                accumulator = np.maximum(accumulator, reduced)
            else:
                accumulator = np.minimum(accumulator, reduced)
            ops, _ = self._body_costs(generator.body)
            self.trace.record(
                "reduction", elements, float(ops), elements * 8, label=f"fold:{operation.op}"
            )
        return accumulator

    def _body_costs(self, body: ast.Expr) -> Tuple[int, int]:
        key = id(body)
        cached = self._body_ops_cache.get(key)
        if cached is None:
            cached = (_count_ops(body), _count_reads(body))
            self._body_ops_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # the vectoriser proper
    # ------------------------------------------------------------------

    def _eval_body_over_box(self, generator, lower, upper, env) -> Batched:
        box_rank = len(lower)
        axes = [np.arange(low, high, dtype=np.int64) for low, high in zip(lower, upper)]
        grids = np.meshgrid(*axes, indexing="ij") if axes else []
        index_env: Dict[str, Batched] = {}
        if generator.vector_var:
            stacked = (
                np.stack(grids, axis=-1)
                if grids
                else np.zeros((0,), dtype=np.int64)
            )
            index_env[generator.index_vars[0]] = Batched(stacked, box_rank)
        else:
            for name, grid in zip(generator.index_vars, grids):
                index_env[name] = Batched(grid, box_rank)
        value = self._vec(generator.body, env, index_env, box_rank)
        if not isinstance(value, Batched):
            data = np.broadcast_to(
                np.asarray(value),
                tuple(high - low for low, high in zip(lower, upper))
                + np.asarray(value).shape,
            )
            value = Batched(data, box_rank)
        return value

    def _vec(self, expr: ast.Expr, env, index_env: Dict[str, Batched], box_rank: int):
        """Evaluate ``expr`` under a batched index environment.

        Returns a plain value (index-independent) or a :class:`Batched`.
        """
        if isinstance(expr, ast.IntLit):
            return np.int64(expr.value)
        if isinstance(expr, ast.DoubleLit):
            return np.float64(expr.value)
        if isinstance(expr, ast.BoolLit):
            return np.bool_(expr.value)
        if isinstance(expr, ast.Var):
            if expr.name in index_env:
                return index_env[expr.name]
            try:
                return env[expr.name]
            except KeyError:
                raise SacRuntimeError(
                    f"{expr.span}: undefined variable {expr.name!r}"
                ) from None
        if isinstance(expr, ast.ArrayLit):
            elements = [self._vec(e, env, index_env, box_rank) for e in expr.elements]
            if not any(isinstance(e, Batched) for e in elements):
                if not elements:
                    return np.zeros(0, dtype=np.int64)
                return np.stack([np.asarray(e) for e in elements])
            return self._stack_batched(elements, box_rank)
        if isinstance(expr, ast.BinOp):
            left = self._vec(expr.left, env, index_env, box_rank)
            right = self._vec(expr.right, env, index_env, box_rank)
            return self._vec_binop(expr.op, left, right, box_rank)
        if isinstance(expr, ast.UnOp):
            operand = self._vec(expr.operand, env, index_env, box_rank)
            if isinstance(operand, Batched):
                return Batched(unary_op(expr.op, operand.data), operand.box_rank)
            return unary_op(expr.op, operand)
        if isinstance(expr, ast.Cond):
            return self._vec_cond(expr, env, index_env, box_rank)
        if isinstance(expr, ast.Index):
            array = self._vec(expr.array, env, index_env, box_rank)
            indices = [self._vec(i, env, index_env, box_rank) for i in expr.indices]
            return self._vec_select(expr, array, indices, box_rank)
        if isinstance(expr, ast.Call):
            return self._vec_call(expr, env, index_env, box_rank)
        if isinstance(expr, (ast.WithLoop, ast.SetComprehension)):
            from repro.sac.opt.util import free_vars

            if free_vars(expr) & set(index_env):
                raise VectorEvalError("index-dependent nested with-loop")
            return self.eval_expr(expr, env)
        raise VectorEvalError(f"unsupported construct {type(expr).__name__}")

    # -- batched combinators ------------------------------------------------

    @staticmethod
    def _element_rank(value, box_rank: int) -> int:
        if isinstance(value, Batched):
            return value.element_rank
        return np.asarray(value).ndim

    def _vec_binop(self, op: str, left, right, box_rank: int):
        if not isinstance(left, Batched) and not isinstance(right, Batched):
            return binary_op(op, left, right)
        target = max(self._element_rank(left, box_rank), self._element_rank(right, box_rank))
        left_data = left.expanded(target) if isinstance(left, Batched) else np.asarray(left)
        right_data = right.expanded(target) if isinstance(right, Batched) else np.asarray(right)
        return Batched(binary_op(op, left_data, right_data), box_rank)

    def _vec_cond(self, expr: ast.Cond, env, index_env, box_rank: int):
        condition = self._vec(expr.condition, env, index_env, box_rank)
        if not isinstance(condition, Batched):
            branch = expr.then if bool(np.asarray(condition)) else expr.otherwise
            return self._vec(branch, env, index_env, box_rank)
        then = self._vec(expr.then, env, index_env, box_rank)
        otherwise = self._vec(expr.otherwise, env, index_env, box_rank)
        target = max(
            self._element_rank(then, box_rank), self._element_rank(otherwise, box_rank)
        )
        then_data = then.expanded(target) if isinstance(then, Batched) else np.asarray(then)
        other_data = (
            otherwise.expanded(target) if isinstance(otherwise, Batched) else np.asarray(otherwise)
        )
        condition_data = condition.expanded(target)
        return Batched(np.where(condition_data, then_data, other_data), box_rank)

    def _stack_batched(self, elements: List, box_rank: int) -> Batched:
        target = max(self._element_rank(e, box_rank) for e in elements)
        box_shape: Optional[Tuple[int, ...]] = None
        for element in elements:
            if isinstance(element, Batched):
                box_shape = element.data.shape[: element.box_rank]
                break
        assert box_shape is not None
        arrays = []
        for element in elements:
            if isinstance(element, Batched):
                arrays.append(element.expanded(target))
            else:
                data = np.asarray(element)
                arrays.append(
                    np.broadcast_to(data, box_shape + data.shape)
                    if data.ndim == target
                    else np.broadcast_to(data, box_shape + (1,) * (target - data.ndim) + data.shape)
                )
        stacked = np.stack(arrays, axis=box_rank)  # new element axis first
        return Batched(stacked, box_rank)

    def _vec_select(self, expr: ast.Index, array, indices: List, box_rank: int):
        if isinstance(array, Batched):
            # selection *into the element part* of a batched value, e.g. iv[0]
            if all(not isinstance(i, Batched) for i in indices):
                element_index = tuple(int(np.asarray(i)) for i in indices)
                selector = (slice(None),) * array.box_rank + element_index
                try:
                    return Batched(array.data[selector], array.box_rank)
                except IndexError as error:
                    raise SacRuntimeError(f"{expr.span}: {error}") from None
            raise VectorEvalError("batched index into batched value")

        base = np.asarray(array)
        if all(not isinstance(i, Batched) for i in indices):
            # fully index-independent: plain sel
            if len(indices) == 1:
                iv = indices[0]
            else:
                iv = np.asarray([int(np.asarray(i)) for i in indices], dtype=np.int64)
            return stdlib.BUILTINS["sel"](iv, base)

        # gather: build one integer grid per indexed axis
        grids: List[np.ndarray] = []
        if len(indices) == 1 and isinstance(indices[0], Batched) and indices[0].element_rank == 1:
            vector = indices[0]
            depth = vector.data.shape[-1]
            for axis in range(depth):
                grids.append(vector.data[..., axis])
        else:
            for index in indices:
                if isinstance(index, Batched):
                    if index.element_rank != 0:
                        raise VectorEvalError("non-scalar batched index component")
                    grids.append(index.data)
                else:
                    grids.append(np.asarray(index))
        if len(grids) > base.ndim:
            raise SacRuntimeError(
                f"{expr.span}: rank-{len(grids)} index into rank-{base.ndim} array"
            )
        for axis, grid in enumerate(grids):
            extent = base.shape[axis]
            low = int(grid.min()) if grid.size else 0
            high = int(grid.max()) if grid.size else -1
            if grid.size and (low < 0 or high >= extent):
                raise SacRuntimeError(
                    f"{expr.span}: sel: index {low if low < 0 else high} out of"
                    f" bounds for axis {axis} (extent {extent})"
                )
        try:
            gathered = base[tuple(grids)]
        except IndexError as error:
            raise SacRuntimeError(f"{expr.span}: {error}") from None
        return Batched(gathered, box_rank)

    def _vec_call(self, expr: ast.Call, env, index_env, box_rank: int):
        args = [self._vec(a, env, index_env, box_rank) for a in expr.args]
        any_batched = any(isinstance(a, Batched) for a in args)
        function = self.functions.get(expr.name)
        if function is not None and expr.module is None:
            if any_batched:
                raise VectorEvalError("user call on index-dependent data")
            return self.call_function(function, list(args))
        builtin = stdlib.lookup(expr.name, expr.module)
        if builtin is None:
            raise SacRuntimeError(f"{expr.span}: unknown function {expr.name!r}")
        if not any_batched:
            return builtin(*args)
        if builtin.name in _ELEMENTWISE_BUILTINS:
            if builtin.arity == 1:
                value = args[0]
                assert isinstance(value, Batched)
                return Batched(builtin.impl(value.data), value.box_rank)
            target = max(self._element_rank(a, box_rank) for a in args)
            datas = [
                a.expanded(target) if isinstance(a, Batched) else np.asarray(a)
                for a in args
            ]
            return Batched(builtin.impl(*datas), box_rank)
        if builtin.name in _REDUCTION_BUILTINS:
            value = args[0]
            assert isinstance(value, Batched)
            if value.element_rank == 0:
                return value  # reducing a scalar is the identity
            element_axes = tuple(
                range(value.box_rank, value.box_rank + value.element_rank)
            )
            reduced = _REDUCERS[builtin.name](value.data, axis=element_axes)
            return Batched(reduced, value.box_rank)
        if builtin.name in ("drop", "take") and isinstance(args[1], Batched) and not isinstance(args[0], Batched):
            value = args[1]
            counts = np.asarray(args[0]).reshape(-1)
            if len(counts) > value.element_rank:
                raise SacRuntimeError(
                    f"{expr.span}: {builtin.name}: too many counts for element rank"
                )
            slices: List[slice] = [slice(None)] * value.box_rank
            element_shape = value.data.shape[value.box_rank:]
            for count, extent in zip(counts, element_shape):
                count = int(count)
                if abs(count) > extent:
                    raise SacRuntimeError(
                        f"{expr.span}: {builtin.name}: count {count} exceeds extent {extent}"
                    )
                if builtin.name == "drop":
                    slices.append(slice(count, None) if count >= 0 else slice(None, extent + count))
                else:
                    slices.append(slice(None, count) if count >= 0 else slice(extent + count, None))
            return Batched(value.data[tuple(slices)], value.box_rank)
        if builtin.name == "shape":
            value = args[0]
            assert isinstance(value, Batched)
            element_shape = np.asarray(
                value.data.shape[value.box_rank:], dtype=np.int64
            )
            return element_shape
        if builtin.name == "dim":
            value = args[0]
            assert isinstance(value, Batched)
            return np.int64(value.element_rank)
        raise VectorEvalError(f"builtin {builtin.name} on index-dependent data")
