"""Public compile-and-run API for the SaC pipeline.

Typical use::

    from repro.sac import api

    program = api.compile_file("euler2d.sac", api.CompilerOptions(threads=4))
    result = program.run("step", q, 0.5)

:class:`CompilerOptions` mirrors the sac2c invocation the paper's
benchmark table records (``-maxoptcyc 100 -O3 -mt -maxwlur 20
-nofoldparallel -DDIM=2``): optimisation cycles, unroll budget,
multithreading, parallel-fold suppression and ``-D`` style defines.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SacError
from repro.sac import ast
from repro.sac.parser import parse_module
from repro.sac.typecheck import Specialization, TypeChecker
from repro.sac.types import SacType
from repro.sac.interp import Interpreter
from repro.sac.eval.numpy_backend import NumpyEvaluator
from repro.sac.eval.scheduler import SchedulerOptions
from repro.sac.opt import PipelineOptions, PipelineReport, optimize_module
from repro.sac.opt.pipeline import verify_ir_default
from repro.sac.opt.util import copy_stmt
from repro.sac.runtime.profiler import ExecutionTrace
from repro.sac import values as V


@dataclass
class CompilerOptions:
    """sac2c-style compilation switches."""

    optimize: bool = True            # -O3 / -O0
    max_cycles: int = 100            # -maxoptcyc 100
    max_unroll: int = 20             # -maxwlur 20
    threads: int = 1                 # -mt -numthreads
    parallel_folds: bool = False     # absence of -nofoldparallel
    defines: Dict[str, object] = field(default_factory=dict)  # -DNAME=value
    typecheck: bool = True
    trace: bool = False              # record an ExecutionTrace while running
    fold_max_uses: int = 2
    fold_max_body_size: int = 120
    #: run the repro.analysis IR verifier between optimisation passes
    verify_ir: bool = field(default_factory=verify_ir_default)

    def pipeline_options(self) -> PipelineOptions:
        return PipelineOptions(
            optimize=self.optimize,
            max_cycles=self.max_cycles,
            max_unroll=self.max_unroll,
            fold_max_uses=self.fold_max_uses,
            fold_max_body_size=self.fold_max_body_size,
            verify_ir=self.verify_ir,
            defines=dict(self.defines),
        )


def paper_options(dim: int = 2, threads: int = 1) -> CompilerOptions:
    """The exact flags of the paper's Section 5 table:
    ``-maxoptcyc 100 -O3 -mt -DDIM=<n> -nofoldparallel -maxwlur 20``."""
    return CompilerOptions(
        optimize=True,
        max_cycles=100,
        max_unroll=20,
        threads=threads,
        parallel_folds=False,
        defines={"DIM": dim},
    )


class SacProgram:
    """A compiled SaC module ready to run."""

    def __init__(self, module: ast.Module, options: CompilerOptions,
                 report: PipelineReport, checker: Optional[TypeChecker]):
        self.module = module
        self.options = options
        self.report = report
        self.checker = checker
        self.trace = ExecutionTrace(enabled=options.trace)
        self._executor = NumpyEvaluator(
            module,
            defines=options.defines,
            trace=self.trace,
            scheduler=SchedulerOptions(
                threads=options.threads,
                parallel_folds=options.parallel_folds,
            ),
        )
        self._reference: Optional[Interpreter] = None

    # ------------------------------------------------------------------

    def run(self, function: str, *args):
        """Run ``function`` on host arguments through the NumPy backend."""
        if self.checker is not None:
            arg_types = [V.type_of(V.to_value(a)) for a in args]
            self.checker.check_entry(function, arg_types)
        return self._executor.call(function, *args)

    def run_reference(self, function: str, *args):
        """Run through the slow reference interpreter (semantics oracle)."""
        if self._reference is None:
            self._reference = Interpreter(self.module, self.options.defines)
        return self._reference.call(function, *args)

    @property
    def specializations(self) -> Dict[Tuple[str, Tuple[str, ...]], Specialization]:
        """Function instances created by shape specialisation so far."""
        if self.checker is None:
            return {}
        return dict(self.checker.specializations)

    def reset_trace(self) -> None:
        self.trace.clear()

    def function_names(self) -> Sequence[str]:
        return [f.name for f in self.module.functions]


def compile_source(
    source: str, options: Optional[CompilerOptions] = None
) -> SacProgram:
    """Front end + checker + optimiser: source text to runnable program."""
    options = options or CompilerOptions()
    module = parse_module(source)
    checker: Optional[TypeChecker] = None
    if options.typecheck:
        checker = TypeChecker(module, options.defines)
        checker.check_all()
    report = optimize_module(module, options.pipeline_options())
    if options.typecheck:
        # re-check after optimisation so annotations exist on new nodes and
        # any pass bug that breaks typing is caught at compile time
        checker = TypeChecker(module, options.defines)
        checker.check_all()
    return SacProgram(module, options, report, checker)


def compile_file(name: str, options: Optional[CompilerOptions] = None) -> SacProgram:
    """Compile one of the bundled programs (``repro/sac/programs/*.sac``)
    or a path on disk."""
    source = load_program_source(name)
    return compile_source(source, options)


def load_program_source(name: str) -> str:
    """Source text of a bundled program, or of a file path."""
    try:
        resource = importlib.resources.files("repro.sac") / "programs" / name
        if resource.is_file():
            return resource.read_text()
    except (ModuleNotFoundError, FileNotFoundError, TypeError):
        pass
    try:
        with open(name, "r") as handle:
            return handle.read()
    except OSError as error:
        raise SacError(f"cannot load SaC program {name!r}: {error}") from None
