"""Spin-lock synchronisation — SaC's pthread runtime model.

The paper (Section 5): "SaC does not use system calls for its inter
thread communication but rather uses the programs shared memory and
spin locks to allow inter thread communication with very little
overhead."  Two artefacts live here:

* :class:`SpinBarrier` — a real busy-wait barrier on shared memory
  used by the threaded scheduler (it never blocks in the kernel);
* :class:`SpinSyncModel` / :class:`ForkJoinSyncModel` — the analytic
  costs the machine model charges per parallel region.  The asymmetry
  between them (nanoseconds of shared-memory spinning versus
  microseconds of kernel-assisted fork/join whose cost grows with the
  thread count) is the mechanism behind Fig. 4's divergence.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from time import perf_counter


class BarrierAborted(RuntimeError):
    """Raised by an aborted barrier so peers unwind instead of deadlocking."""


class SpinBarrier:
    """A reusable busy-wait barrier (sense-reversing, shared-memory only).

    All waiting is done by spinning on a generation counter; no kernel
    sleep is involved, mirroring the SaC pthread backend's design.

    :meth:`abort` releases current waiters and poisons the barrier —
    every released or subsequent :meth:`wait` raises
    :class:`BarrierAborted` — *except* waits whose generation already
    completed before the abort landed: a successful release must stay
    successful even if the waiter is descheduled between the generation
    bump and its post-release check.  The worker pool uses abort so one
    failing worker cannot strand its siblings mid-step; a spin-budget
    overrun likewise aborts the barrier before raising, so siblings
    unwind immediately instead of burning their own budgets.

    ``wait_seconds`` accumulates wall-clock time spent inside
    :meth:`wait` (telemetry for :mod:`repro.obs`).
    """

    def __init__(self, parties: int, max_spins: int = 10_000_000):
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.parties = parties
        self.max_spins = max_spins
        self._count = parties
        self._generation = 0
        self._aborted = False
        self._abort_generation: int | None = None
        self._lock = threading.Lock()
        self.wait_seconds = 0.0

    def wait(self) -> int:
        """Spin until all parties arrive; returns the generation passed."""
        started = perf_counter()
        try:
            return self._wait()
        finally:
            elapsed = perf_counter() - started
            with self._lock:
                self.wait_seconds += elapsed

    def _wait(self) -> int:
        with self._lock:
            if self._aborted:
                raise BarrierAborted("spin barrier aborted")
            generation = self._generation
            self._count -= 1
            if self._count == 0:
                self._count = self.parties
                self._generation += 1
                return generation
        spins = 0
        while self._generation == generation:
            spins += 1
            if spins > self.max_spins:
                # Abort before raising: siblings spinning on the same
                # generation are released with BarrierAborted right now
                # instead of overrunning their own budgets one by one.
                self.abort()
                raise RuntimeError("spin barrier exceeded its spin budget")
        if self._aborted and self._abort_generation is not None \
                and self._abort_generation <= generation:
            raise BarrierAborted("spin barrier aborted")
        return generation

    def abort(self) -> None:
        """Poison the barrier and release anyone currently spinning.

        Waits of the generation being aborted (and later) raise
        :class:`BarrierAborted`; a wait whose generation was already
        completed by a normal release returns normally even if the
        abort lands before its post-release check.
        """
        with self._lock:
            if self._aborted:
                return
            self._aborted = True
            self._abort_generation = self._generation
            self._count = self.parties
            self._generation += 1


@dataclass(frozen=True)
class SpinSyncModel:
    """Analytic cost of SaC-style spin synchronisation.

    Per parallel region the runtime performs one release and one
    barrier; spinning costs grow only logarithmically with the worker
    count (tree barrier over shared cache lines).
    """

    start_cost: float = 0.4e-6     # seconds: waking workers via shared flag
    per_thread_cost: float = 0.05e-6

    def region_overhead(self, threads: int) -> float:
        if threads <= 1:
            return 0.0
        import math

        return self.start_cost + self.per_thread_cost * math.log2(threads) * 2.0

    def nested_overhead(self, threads: int, outer_iterations: int) -> float:
        """SaC runs one flat, persistent worker team: nesting is free."""
        return 0.0


@dataclass(frozen=True)
class ForkJoinSyncModel:
    """Analytic cost of OpenMP-style fork/join with kernel involvement.

    Sun Studio's auto-parallelised loops fork a team and join it through
    the kernel scheduler; the cost has a fixed syscall floor and grows
    *linearly* with the team size.  This is the overhead the paper blames
    for Fortran's degradation: "added overhead of communication between
    the threads".
    """

    fork_cost: float = 8.0e-6      # seconds: team activation via kernel
    per_thread_cost: float = 3.0e-6
    nested_penalty: float = 1.5    # OMP_NESTED=TRUE multiplies team churn
    inner_fork_cost: float = 5.0e-6     # nested team per outer iteration
    inner_per_thread_cost: float = 2.0e-6

    def region_overhead(self, threads: int) -> float:
        if threads <= 1:
            return 0.0
        return (self.fork_cost + self.per_thread_cost * threads) * self.nested_penalty

    def nested_overhead(self, threads: int, outer_iterations: int) -> float:
        """OMP_NESTED=TRUE: each outer iteration of a parallelised nest
        activates an inner team — the dominant overhead on small grids,
        where it immediately eats the gain from adding cores."""
        if threads <= 1 or self.nested_penalty <= 1.0:
            return 0.0
        return outer_iterations * (
            self.inner_fork_cost + self.inner_per_thread_cost * threads
        )


_worker_counter = itertools.count()


def fresh_worker_name() -> str:
    return f"sac-worker-{next(_worker_counter)}"
