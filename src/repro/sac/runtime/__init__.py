"""Runtime support: profiling traces and the pthread-style sync models."""

from repro.sac.runtime.profiler import ExecutionTrace, Region
from repro.sac.runtime.spinlock import (
    BarrierAborted,
    ForkJoinSyncModel,
    SpinBarrier,
    SpinSyncModel,
)

__all__ = [
    "ExecutionTrace",
    "Region",
    "BarrierAborted",
    "ForkJoinSyncModel",
    "SpinBarrier",
    "SpinSyncModel",
]
