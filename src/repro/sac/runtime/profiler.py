"""Execution profiling: the bridge between executors and the machine model.

Both language pipelines emit an :class:`ExecutionTrace` — a sequence of
*regions*, each either parallelisable (a with-loop / array operation /
parallel DO loop) or serial.  The simulated multicore of
``repro.perf.machine`` replays a trace for any core count and
synchronisation model, which is how the paper's Fig. 4 is regenerated
without a 16-core Opteron: the *structure* of the computation is
measured, the hardware is modelled.

Region accounting:

* ``elements``         — size of the data-parallel index space
* ``ops_per_element``  — scalar operations per element (an operation
  count of the loop body, the proxy for per-element work)
* ``bytes_touched``    — memory traffic (reads of operands + the write
  of the result), used by the bandwidth ceiling in the machine model
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

#: Region kinds; everything except "serial" may be run in parallel.
PARALLEL_KINDS = ("with_loop", "elementwise", "reduction", "parallel_do")


@dataclass(frozen=True)
class Region:
    """One unit of work in an execution trace."""

    kind: str  # with_loop | elementwise | reduction | parallel_do | serial
    elements: int
    ops_per_element: float = 1.0
    bytes_touched: int = 0
    label: str = ""
    #: outer-loop trip count of a parallelised loop *nest* (0 when the
    #: region is flat); scales with the linear grid size, not the cell
    #: count, and drives the nested-team churn of the OpenMP model
    outer_iterations: int = 0

    @property
    def is_parallel(self) -> bool:
        return self.kind in PARALLEL_KINDS

    @property
    def work(self) -> float:
        """Total scalar operations represented by this region."""
        return self.elements * self.ops_per_element


@dataclass
class ExecutionTrace:
    """An append-only sequence of regions with summary helpers."""

    regions: List[Region] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        kind: str,
        elements: int,
        ops_per_element: float = 1.0,
        bytes_touched: int = 0,
        label: str = "",
        outer_iterations: int = 0,
    ) -> None:
        if self.enabled and elements > 0:
            self.regions.append(
                Region(
                    kind,
                    int(elements),
                    float(ops_per_element),
                    int(bytes_touched),
                    label,
                    int(outer_iterations),
                )
            )

    def clear(self) -> None:
        self.regions.clear()

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    # -- summaries ----------------------------------------------------------

    @property
    def parallel_region_count(self) -> int:
        return sum(1 for region in self.regions if region.is_parallel)

    @property
    def serial_region_count(self) -> int:
        return sum(1 for region in self.regions if not region.is_parallel)

    @property
    def total_work(self) -> float:
        return sum(region.work for region in self.regions)

    @property
    def parallel_work(self) -> float:
        return sum(region.work for region in self.regions if region.is_parallel)

    @property
    def total_bytes(self) -> int:
        return sum(region.bytes_touched for region in self.regions)

    def scaled(
        self,
        element_factor: float,
        repetitions: int = 1,
        outer_factor: Optional[float] = None,
    ) -> "ExecutionTrace":
        """A trace with every region's size scaled — used to extrapolate a
        few measured steps on a small grid to the paper's full runs.

        ``element_factor`` scales cell counts (quadratic in the linear
        grid ratio for 2-D); ``outer_factor`` scales the outer trip
        counts of loop nests (linear), defaulting to the square root of
        ``element_factor``.
        """
        if outer_factor is None:
            outer_factor = element_factor ** 0.5
        scaled_regions = [
            Region(
                region.kind,
                max(1, int(round(region.elements * element_factor)))
                if region.is_parallel
                else region.elements,
                region.ops_per_element,
                int(region.bytes_touched * element_factor)
                if region.is_parallel
                else region.bytes_touched,
                region.label,
                int(round(region.outer_iterations * outer_factor)),
            )
            for region in self.regions
        ]
        trace = ExecutionTrace(regions=scaled_regions * repetitions)
        return trace

    def summary(self) -> str:
        return (
            f"{len(self.regions)} regions"
            f" ({self.parallel_region_count} parallel,"
            f" {self.serial_region_count} serial),"
            f" work {self.total_work:.3g} ops,"
            f" traffic {self.total_bytes / 1e6:.3g} MB"
        )
