"""SaC's array type system with shape subtyping.

The paper (Section 2) leans on "an elaborate system of array subtyping":
code written against ``fluid_pv[+]`` (unknown dimensionality) is reused
for 1-D and 2-D data with no penalty because the compiler specialises
it per call-site shape.  The hierarchy implemented here is the standard
SaC one:

* **AKS** — array of known shape, e.g. ``double[400,400]``
* **AKD** — known dimensionality, unknown extents, e.g. ``double[.,.]``
* **AUD** — unknown dimensionality: ``double[+]`` (rank >= 1) and
  ``double[*]`` (anything, including scalars)

with ``AKS <= AKD <= AUD[+] <= AUD[*]``.  User ``typedef``\\ s such as
``typedef double[4] fluid_cv`` add known *trailing* extents that nest
inside outer shape specs (``fluid_cv[.]`` is ``double[., 4]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import SacTypeError
from repro.sac.ast import TypeExpr

BASE_TYPES = ("double", "int", "bool")

#: Promotion order for mixed arithmetic.
_BASE_RANK = {"bool": 0, "int": 1, "double": 2}


@dataclass(frozen=True)
class SacType:
    """A (possibly partially known) array type.

    ``dims``    — tuple of extents for the *outer* part of the shape;
                  an entry of ``None`` means "known dimension, unknown
                  extent".  ``dims is None`` means unknown
                  dimensionality (AUD).
    ``min_dim`` — for AUD types: the minimum number of outer dimensions
                  (1 for ``[+]``, 0 for ``[*]``).  Ignored otherwise.
    ``suffix``  — known trailing extents contributed by typedefs.
    """

    base: str
    dims: Optional[Tuple[Optional[int], ...]] = ()
    min_dim: int = 0
    suffix: Tuple[int, ...] = ()

    # -- classification ------------------------------------------------

    @property
    def is_aud(self) -> bool:
        return self.dims is None

    @property
    def is_akd(self) -> bool:
        return self.dims is not None and any(d is None for d in self.dims)

    @property
    def is_aks(self) -> bool:
        return self.dims is not None and all(d is not None for d in self.dims)

    @property
    def is_scalar(self) -> bool:
        return self.dims == () and self.suffix == ()

    @property
    def ndim(self) -> Optional[int]:
        """Rank if known, else None."""
        if self.dims is None:
            return None
        return len(self.dims) + len(self.suffix)

    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        """Concrete shape for AKS types, else None."""
        if self.is_aks:
            return tuple(self.dims) + self.suffix  # type: ignore[arg-type]
        return None

    def full_dims(self) -> Optional[Tuple[Optional[int], ...]]:
        """dims + suffix for known-rank types."""
        if self.dims is None:
            return None
        return tuple(self.dims) + self.suffix

    def __str__(self) -> str:
        if self.is_scalar:
            return self.base
        if self.dims is None:
            mark = "+" if self.min_dim >= 1 else "*"
            inner = ",".join([mark] + [str(s) for s in self.suffix])
            return f"{self.base}[{inner}]"
        entries = [("." if d is None else str(d)) for d in self.full_dims()]
        return f"{self.base}[{','.join(entries)}]"


def scalar(base: str) -> SacType:
    return SacType(base, ())


def array_of(base: str, shape: Tuple[int, ...]) -> SacType:
    """AKS array type with a concrete shape (scalar when shape is empty)."""
    return SacType(base, tuple(shape))


DOUBLE = scalar("double")
INT = scalar("int")
BOOL = scalar("bool")


def is_subtype(sub: SacType, sup: SacType) -> bool:
    """Shape-subtyping check: every value of ``sub`` is a value of ``sup``."""
    if sub.base != sup.base:
        return False
    sub_dims = sub.full_dims()
    if sup.dims is None:
        # supertype is AUD: rank bound + trailing extents must match
        if sub_dims is None:
            return (
                sub.min_dim >= sup.min_dim
                and len(sub.suffix) >= len(sup.suffix)
                and (sup.suffix == sub.suffix[len(sub.suffix) - len(sup.suffix):]
                     if sup.suffix else True)
            )
        if len(sub_dims) < sup.min_dim + len(sup.suffix):
            return False
        if sup.suffix:
            tail = sub_dims[len(sub_dims) - len(sup.suffix):]
            return tuple(tail) == sup.suffix
        return True
    if sub_dims is None:
        return False  # can't promise a fixed rank from an AUD value
    sup_dims = sup.full_dims()
    if len(sub_dims) != len(sup_dims):
        return False
    for have, want in zip(sub_dims, sup_dims):
        if want is not None and have != want:
            return False
    return True


def join_base(a: str, b: str) -> str:
    """Base type of mixed arithmetic (bool < int < double)."""
    if a not in _BASE_RANK or b not in _BASE_RANK:
        raise SacTypeError(f"cannot combine base types {a!r} and {b!r}")
    return a if _BASE_RANK[a] >= _BASE_RANK[b] else b


@dataclass
class TypedefEnv:
    """Resolved ``typedef`` table: alias -> (base, trailing shape)."""

    entries: Dict[str, Tuple[str, Tuple[int, ...]]] = field(default_factory=dict)

    def define(self, name: str, base: str, suffix: Tuple[int, ...]) -> None:
        if name in BASE_TYPES:
            raise SacTypeError(f"cannot redefine base type {name!r}")
        if name in self.entries:
            raise SacTypeError(f"duplicate typedef {name!r}")
        self.entries[name] = (base, suffix)

    def resolve_base(self, name: str) -> Tuple[str, Tuple[int, ...]]:
        """Resolve a type name to (base, trailing extents)."""
        if name in BASE_TYPES:
            return name, ()
        if name in self.entries:
            return self.entries[name]
        raise SacTypeError(f"unknown type {name!r}")


def from_type_expr(expr: TypeExpr, typedefs: TypedefEnv) -> SacType:
    """Semantic type of a syntactic type, expanding typedefs."""
    base, suffix = typedefs.resolve_base(expr.base)
    if isinstance(expr.dims, str):
        if expr.dims == "+":
            return SacType(base, None, min_dim=1, suffix=suffix)
        if expr.dims == "*":
            return SacType(base, None, min_dim=0, suffix=suffix)
        raise SacTypeError(f"bad shape spec {expr.dims!r}")
    dims = tuple(None if d == "." else int(d) for d in expr.dims)
    return SacType(base, dims, suffix=suffix)


def register_typedef(name: str, definition: TypeExpr, typedefs: TypedefEnv) -> None:
    """Install ``typedef <definition> <name>;`` — the definition must be AKS."""
    inner = from_type_expr(definition, typedefs)
    if not inner.is_aks:
        raise SacTypeError(
            f"typedef {name!r} must have a fully known shape, got {inner}"
        )
    typedefs.define(name, inner.base, inner.shape or ())


def concrete_type(base: str, shape: Tuple[int, ...]) -> SacType:
    """AKS type of a runtime value."""
    return SacType(base, tuple(int(s) for s in shape))
