"""Lexer for the SaC subset.

Tokenises the C-like surface syntax the paper shows: with-loops, set
notation ``{ [i,j] -> e }``, array types ``double[.,.]`` / ``t[+]``,
qualified names ``MathArray::fabs``, and the usual C operators.
Comments are ``//`` and ``/* ... */``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import SacSyntaxError
from repro.sac.source import Span

KEYWORDS = {
    "module",
    "use",
    "typedef",
    "inline",
    "return",
    "if",
    "else",
    "for",
    "while",
    "do",
    "with",
    "genarray",
    "modarray",
    "fold",
    "true",
    "false",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPERATORS = [
    "::",
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
]

SINGLE_OPERATORS = set("+-*/%<>=!?:,;()[]{}.&|")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident' | 'keyword' | 'int' | 'double' | 'op' | 'eof'
    text: str
    span: Span

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source``; raises :class:`SacSyntaxError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and source[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = source[position]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", position):
            while position < length and source[position] != "\n":
                advance(1)
            continue
        if source.startswith("/*", position):
            start = Span(line, column)
            advance(2)
            while position < length and not source.startswith("*/", position):
                advance(1)
            if position >= length:
                raise SacSyntaxError("unterminated block comment", start.line, start.column)
            advance(2)
            continue

        span = Span(line, column)
        if char.isalpha() or char == "_":
            end = position
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[position:end]
            advance(end - position)
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, span)
            continue

        if char.isdigit():
            yield _number(source, position, span, advance)
            continue

        matched = False
        for operator in MULTI_OPERATORS:
            if source.startswith(operator, position):
                advance(len(operator))
                yield Token("op", operator, span)
                matched = True
                break
        if matched:
            continue

        if char in SINGLE_OPERATORS:
            advance(1)
            yield Token("op", char, span)
            continue

        raise SacSyntaxError(f"unexpected character {char!r}", line, column)

    yield Token("eof", "", Span(line, column))


def _number(source: str, position: int, span: Span, advance) -> Token:
    """Scan an int or floating literal (1, 2.5, 1e-3, 0.5d0-style rejected)."""
    length = len(source)
    end = position
    while end < length and source[end].isdigit():
        end += 1
    is_double = False
    if end < length and source[end] == "." and (end + 1 >= length or source[end + 1] != "."):
        # not part of a '..' or a lone dot in types
        if end + 1 < length and (source[end + 1].isdigit() or not (source[end + 1].isalpha())):
            is_double = True
            end += 1
            while end < length and source[end].isdigit():
                end += 1
    if end < length and source[end] in "eE":
        probe = end + 1
        if probe < length and source[probe] in "+-":
            probe += 1
        if probe < length and source[probe].isdigit():
            is_double = True
            end = probe
            while end < length and source[end].isdigit():
                end += 1
    text = source[position:end]
    advance(end - position)
    return Token("double" if is_double else "int", text, span)
