"""A miniature SaC (Single-Assignment C) — the paper's language.

Pipeline: :mod:`lexer` / :mod:`parser` (front end) →
:mod:`typecheck` (shape subtyping + specialisation) →
:mod:`opt` (inlining, constant folding, CSE, with-loop folding,
with-loop unrolling, DCE, memory reuse) →
:mod:`interp` (reference semantics) or :mod:`eval.numpy_backend`
(vectorised, multithreaded, trace-recording executor).

Entry point: :func:`repro.sac.api.compile_source` /
:func:`repro.sac.api.compile_file`.
"""

from repro.sac.api import (
    CompilerOptions,
    SacProgram,
    compile_file,
    compile_source,
    load_program_source,
    paper_options,
)

__all__ = [
    "CompilerOptions",
    "SacProgram",
    "compile_file",
    "compile_source",
    "load_program_source",
    "paper_options",
]
