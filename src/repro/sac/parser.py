"""Recursive-descent parser for the SaC subset.

Produces the AST of :mod:`repro.sac.ast`.  The grammar covers what the
paper's code excerpts use — with-loops with multiple generators, set
notation, array types with ``.``/``+``/``*`` shape specs, qualified
stdlib calls (``MathArray::fabs``), ``inline`` functions, typedefs and
top-level constants — plus the usual C expression grammar.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SacSyntaxError
from repro.sac import ast
from repro.sac.lexer import Token, tokenize

FOLD_OPERATORS = {"+", "*", "max", "min"}


class Parser:
    """One-token-lookahead recursive descent parser."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SacSyntaxError:
        token = token or self.current
        return SacSyntaxError(message, token.span.line, token.span.column)

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise self.error(f"expected {text!r}, found {self.current.text!r}")
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            raise self.error(f"expected keyword {text!r}, found {self.current.text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise self.error(f"expected identifier, found {self.current.text!r}")
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        name = "main"
        if self.current.is_keyword("module"):
            self.advance()
            name = self.expect_ident().text
            self.expect_op(";")

        uses: List[str] = []
        typedefs: List[ast.TypeDef] = []
        globals_: List[ast.GlobalDef] = []
        functions: List[ast.Function] = []

        while self.current.kind != "eof":
            if self.current.is_keyword("use"):
                self.advance()
                uses.append(self.expect_ident().text)
                self.expect_op(";")
            elif self.current.is_keyword("typedef"):
                span = self.advance().span
                definition = self.parse_type()
                alias = self.expect_ident().text
                self.expect_op(";")
                typedefs.append(ast.TypeDef(alias, definition, span))
            else:
                self._parse_global_or_function(globals_, functions)

        return ast.Module(name, uses, typedefs, globals_, functions)

    def _parse_global_or_function(self, globals_, functions) -> None:
        inline = False
        span = self.current.span
        if self.current.is_keyword("inline"):
            inline = True
            self.advance()
        declared_type = self.parse_type()
        name = self.expect_ident().text
        if self.current.is_op("="):
            if inline:
                raise self.error("a global constant cannot be 'inline'")
            self.advance()
            expr = self.parse_expr()
            self.expect_op(";")
            globals_.append(ast.GlobalDef(declared_type, name, expr, span))
            return
        self.expect_op("(")
        params: List[ast.Param] = []
        if not self.current.is_op(")"):
            while True:
                param_type = self.parse_type()
                param_name = self.expect_ident().text
                params.append(ast.Param(param_type, param_name))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self.parse_block()
        functions.append(
            ast.Function(name, declared_type, params, body, inline, span)
        )

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def parse_type(self) -> ast.TypeExpr:
        """``base`` optionally followed by ``[dims]`` / ``[+]`` / ``[*]``."""
        base_token = self.expect_ident()
        dims: object = []
        if self.current.is_op("["):
            self.advance()
            if self.current.is_op("+") or self.current.is_op("*"):
                dims = self.advance().text
            else:
                entries: List[object] = []
                while True:
                    if self.current.is_op("."):
                        self.advance()
                        entries.append(".")
                    elif self.current.kind == "int":
                        entries.append(int(self.advance().text))
                    else:
                        raise self.error(
                            "array dimension must be an integer or '.'"
                        )
                    if not self.accept_op(","):
                        break
                dims = entries
            self.expect_op("]")
        return ast.TypeExpr(base_token.text, dims, base_token.span)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.expect_op("{")
        statements: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise self.error("unterminated block")
            statements.append(self.parse_stmt())
        self.expect_op("}")
        return statements

    def parse_block_or_stmt(self) -> List[ast.Stmt]:
        if self.current.is_op("{"):
            return self.parse_block()
        return [self.parse_stmt()]

    def parse_stmt(self) -> ast.Stmt:
        token = self.current
        if token.is_keyword("return"):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(";")
            return ast.Return(expr, token.span)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.kind == "ident" and self.peek().is_op("="):
            assign = self._parse_assign()
            self.expect_op(";")
            return assign
        raise self.error(f"expected a statement, found {token.text!r}")

    def _parse_assign(self) -> ast.Assign:
        name_token = self.expect_ident()
        self.expect_op("=")
        expr = self.parse_expr()
        return ast.Assign(name_token.text, expr, name_token.span)

    def _parse_if(self) -> ast.If:
        span = self.expect_keyword("if").span
        self.expect_op("(")
        condition = self.parse_expr()
        self.expect_op(")")
        then_body = self.parse_block_or_stmt()
        else_body: List[ast.Stmt] = []
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self.parse_block_or_stmt()
        return ast.If(condition, then_body, else_body, span)

    def _parse_for(self) -> ast.For:
        span = self.expect_keyword("for").span
        self.expect_op("(")
        init = self._parse_assign()
        self.expect_op(";")
        condition = self.parse_expr()
        self.expect_op(";")
        update = self._parse_assign()
        self.expect_op(")")
        body = self.parse_block_or_stmt()
        return ast.For(init, condition, update, body, span)

    def _parse_while(self) -> ast.While:
        span = self.expect_keyword("while").span
        self.expect_op("(")
        condition = self.parse_expr()
        self.expect_op(")")
        body = self.parse_block_or_stmt()
        return ast.While(condition, body, span)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_or()
        if self.current.is_op("?"):
            span = self.advance().span
            then = self.parse_expr()
            self.expect_op(":")
            otherwise = self.parse_expr()
            return ast.Cond(condition, then, otherwise, span)
        return condition

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.current.is_op("||"):
            span = self.advance().span
            left = ast.BinOp("||", left, self._parse_and(), span)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.current.is_op("&&"):
            span = self.advance().span
            left = ast.BinOp("&&", left, self._parse_comparison(), span)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.current.is_op(op):
                span = self.advance().span
                return ast.BinOp(op, left, self._parse_additive(), span)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op_token = self.advance()
            left = ast.BinOp(
                op_token.text, left, self._parse_multiplicative(), op_token.span
            )
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while (
            self.current.is_op("*")
            or self.current.is_op("/")
            or self.current.is_op("%")
        ):
            op_token = self.advance()
            left = ast.BinOp(op_token.text, left, self._parse_unary(), op_token.span)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.current.is_op("-") or self.current.is_op("!"):
            op_token = self.advance()
            return ast.UnOp(op_token.text, self._parse_unary(), op_token.span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self.current.is_op("["):
            span = self.advance().span
            indices = [self.parse_expr()]
            while self.accept_op(","):
                indices.append(self.parse_expr())
            self.expect_op("]")
            expr = ast.Index(expr, indices, span)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.text), token.span)
        if token.kind == "double":
            self.advance()
            return ast.DoubleLit(float(token.text), token.span)
        if token.is_keyword("true"):
            self.advance()
            return ast.BoolLit(True, token.span)
        if token.is_keyword("false"):
            self.advance()
            return ast.BoolLit(False, token.span)
        if token.is_keyword("with"):
            return self._parse_with_loop()
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.is_op("["):
            self.advance()
            elements: List[ast.Expr] = []
            if not self.current.is_op("]"):
                elements.append(self.parse_expr())
                while self.accept_op(","):
                    elements.append(self.parse_expr())
            self.expect_op("]")
            return ast.ArrayLit(elements, token.span)
        if token.is_op("{"):
            return self._parse_set_comprehension()
        if token.kind == "ident":
            return self._parse_name_or_call()
        if (
            token.kind == "keyword"
            and token.text in ("genarray", "modarray")
            and self.peek().is_op("(")
        ):
            # the stdlib *functions* genarray/modarray share their names
            # with the with-loop operations; here they are ordinary calls
            self.advance()
            self.expect_op("(")
            args = [self.parse_expr()]
            while self.accept_op(","):
                args.append(self.parse_expr())
            self.expect_op(")")
            return ast.Call(token.text, args, None, token.span)
        raise self.error(f"expected an expression, found {token.text!r}")

    def _parse_name_or_call(self) -> ast.Expr:
        name_token = self.expect_ident()
        module: Optional[str] = None
        name = name_token.text
        if self.current.is_op("::"):
            self.advance()
            module = name
            name = self.expect_ident().text
        if self.current.is_op("("):
            self.advance()
            args: List[ast.Expr] = []
            if not self.current.is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            return ast.Call(name, args, module, name_token.span)
        if module is not None:
            raise self.error("qualified names must be function calls", name_token)
        return ast.Var(name, name_token.span)

    # ------------------------------------------------------------------
    # with-loops and set notation
    # ------------------------------------------------------------------

    def _parse_with_loop(self) -> ast.WithLoop:
        span = self.expect_keyword("with").span
        self.expect_op("{")
        generators: List[ast.Generator] = []
        while not self.current.is_op("}"):
            generators.append(self._parse_generator())
        self.expect_op("}")
        self.expect_op(":")
        operation = self._parse_with_operation()
        if not generators and not isinstance(operation, ast.ModArray):
            # genarray with no generators is legal only when a default exists
            if isinstance(operation, ast.GenArray) and operation.default is None:
                raise self.error("genarray with no generators needs a default", None)
        return ast.WithLoop(generators, operation, span)

    def _parse_generator(self) -> ast.Generator:
        span = self.expect_op("(").span
        # bounds parse at additive precedence so the generator's own
        # <= / < relations are not swallowed as comparisons
        lower = None if self.accept_op(".") else self._parse_additive()
        lower_inclusive = self._parse_relation()
        index_vars, vector_var = self._parse_index_spec()
        upper_inclusive = self._parse_relation(upper=True)
        upper = None if self.accept_op(".") else self._parse_additive()
        self.expect_op(")")
        self.expect_op(":")
        body = self.parse_expr()
        self.expect_op(";")
        return ast.Generator(
            index_vars,
            vector_var,
            lower,
            upper,
            lower_inclusive,
            upper_inclusive,
            body,
            span,
        )

    def _parse_relation(self, upper: bool = False) -> bool:
        """Consume ``<=`` or ``<``; returns True when inclusive."""
        if self.accept_op("<="):
            return True
        if self.accept_op("<"):
            return False
        raise self.error("expected '<' or '<=' in generator")

    def _parse_index_spec(self):
        if self.current.is_op("["):
            self.advance()
            names = [self.expect_ident().text]
            while self.accept_op(","):
                names.append(self.expect_ident().text)
            self.expect_op("]")
            return names, False
        return [self.expect_ident().text], True

    def _parse_with_operation(self):
        token = self.current
        if token.is_keyword("genarray"):
            self.advance()
            self.expect_op("(")
            shape = self.parse_expr()
            default = None
            if self.accept_op(","):
                default = self.parse_expr()
            self.expect_op(")")
            return ast.GenArray(shape, default, token.span)
        if token.is_keyword("modarray"):
            self.advance()
            self.expect_op("(")
            array = self.parse_expr()
            self.expect_op(")")
            return ast.ModArray(array, token.span)
        if token.is_keyword("fold"):
            self.advance()
            self.expect_op("(")
            if self.current.is_op("+") or self.current.is_op("*"):
                fold_op = self.advance().text
            elif self.current.kind == "ident" and self.current.text in FOLD_OPERATORS:
                fold_op = self.advance().text
            else:
                raise self.error("fold operator must be +, *, max or min")
            self.expect_op(",")
            neutral = self.parse_expr()
            self.expect_op(")")
            return ast.Fold(fold_op, neutral, token.span)
        raise self.error("expected genarray, modarray or fold")

    def _parse_set_comprehension(self) -> ast.SetComprehension:
        span = self.expect_op("{").span
        index_vars, vector_var = self._parse_index_spec()
        self.expect_op("->")
        body = self.parse_expr()
        bound: Optional[ast.Expr] = None
        if self.accept_op("|"):
            bound_vars, bound_vector = self._parse_index_spec()
            if bound_vars != index_vars or bound_vector != vector_var:
                raise self.error("bound clause must repeat the index variables")
            self.expect_op("<")
            bound = self.parse_expr()
        self.expect_op("}")
        return ast.SetComprehension(index_vars, vector_var, body, bound, span)


def parse_module(source: str) -> ast.Module:
    """Parse a complete SaC module from source text."""
    return Parser(source).parse_module()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and the REPL-ish API)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    if parser.current.kind != "eof":
        raise parser.error("trailing input after expression")
    return expr
