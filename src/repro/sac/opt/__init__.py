"""AST-level optimisation passes of the SaC pipeline."""

from repro.sac.opt.pipeline import (
    PipelineOptions,
    PipelineReport,
    optimize_module,
)
from repro.sac.opt.inline import inline_functions
from repro.sac.opt.constfold import fold_constants
from repro.sac.opt.cse import eliminate_common_subexpressions
from repro.sac.opt.dce import eliminate_dead_code
from repro.sac.opt.fwdsub import forward_substitute
from repro.sac.opt.wlf import FoldOptions, fold_with_loops
from repro.sac.opt.wlur import unroll_with_loops
from repro.sac.opt.memreuse import annotate_memory_reuse

__all__ = [
    "PipelineOptions",
    "PipelineReport",
    "optimize_module",
    "inline_functions",
    "fold_constants",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "forward_substitute",
    "FoldOptions",
    "fold_with_loops",
    "unroll_with_loops",
    "annotate_memory_reuse",
]
