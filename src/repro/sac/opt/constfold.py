"""Constant folding and algebraic simplification.

Folds literal arithmetic (including int-vector arithmetic through
array literals), selections from array literals, conditionals with
literal conditions, and the type-preserving identities ``x+0``,
``x-0``, ``x*1``, ``x/1``.  Runs inside with-loop bodies too, which is
what makes folded with-loops cheap after WLF substitutes indices.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sac import ast


class ConstFolder:
    def __init__(self):
        self.changes = 0

    # -- statements --------------------------------------------------------

    def fold_block(self, statements: List[ast.Stmt]) -> List[ast.Stmt]:
        result: List[ast.Stmt] = []
        for statement in statements:
            folded = self.fold_stmt(statement)
            if isinstance(folded, list):
                result.extend(folded)
            else:
                result.append(folded)
        return result

    def fold_stmt(self, statement: ast.Stmt):
        if isinstance(statement, ast.Assign):
            statement.expr = self.fold(statement.expr)
            return statement
        if isinstance(statement, ast.Return):
            statement.expr = self.fold(statement.expr)
            return statement
        if isinstance(statement, ast.If):
            statement.condition = self.fold(statement.condition)
            statement.then_body = self.fold_block(statement.then_body)
            statement.else_body = self.fold_block(statement.else_body)
            if isinstance(statement.condition, ast.BoolLit):
                self.changes += 1
                return (
                    statement.then_body
                    if statement.condition.value
                    else statement.else_body
                )
            return statement
        if isinstance(statement, ast.For):
            statement.init.expr = self.fold(statement.init.expr)
            statement.condition = self.fold(statement.condition)
            statement.update.expr = self.fold(statement.update.expr)
            statement.body = self.fold_block(statement.body)
            return statement
        if isinstance(statement, ast.While):
            statement.condition = self.fold(statement.condition)
            statement.body = self.fold_block(statement.body)
            return statement
        return statement

    # -- expressions -------------------------------------------------------

    def fold(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.BinOp):
            expr.left = self.fold(expr.left)
            expr.right = self.fold(expr.right)
            return self._fold_binop(expr)
        if isinstance(expr, ast.UnOp):
            expr.operand = self.fold(expr.operand)
            literal = _literal_value(expr.operand)
            if literal is not None and expr.op == "-":
                self.changes += 1
                return _make_literal(-literal, expr.span)
            if isinstance(expr.operand, ast.BoolLit) and expr.op == "!":
                self.changes += 1
                return ast.BoolLit(not expr.operand.value, expr.span)
            return expr
        if isinstance(expr, ast.Cond):
            expr.condition = self.fold(expr.condition)
            expr.then = self.fold(expr.then)
            expr.otherwise = self.fold(expr.otherwise)
            if isinstance(expr.condition, ast.BoolLit):
                self.changes += 1
                return expr.then if expr.condition.value else expr.otherwise
            return expr
        if isinstance(expr, ast.ArrayLit):
            expr.elements = [self.fold(e) for e in expr.elements]
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self.fold(a) for a in expr.args]
            return expr
        if isinstance(expr, ast.Index):
            expr.array = self.fold(expr.array)
            expr.indices = [self.fold(i) for i in expr.indices]
            # [a, b, c][1] --> b  (appears after WLF index substitution)
            if (
                isinstance(expr.array, ast.ArrayLit)
                and len(expr.indices) == 1
                and isinstance(expr.indices[0], ast.IntLit)
            ):
                position = expr.indices[0].value
                if 0 <= position < len(expr.array.elements):
                    self.changes += 1
                    return expr.array.elements[position]
            return expr
        if isinstance(expr, ast.WithLoop):
            for generator in expr.generators:
                if generator.lower is not None:
                    generator.lower = self.fold(generator.lower)
                if generator.upper is not None:
                    generator.upper = self.fold(generator.upper)
                generator.body = self.fold(generator.body)
            operation = expr.operation
            if isinstance(operation, ast.GenArray):
                operation.shape = self.fold(operation.shape)
                if operation.default is not None:
                    operation.default = self.fold(operation.default)
            elif isinstance(operation, ast.ModArray):
                operation.array = self.fold(operation.array)
            else:
                operation.neutral = self.fold(operation.neutral)
            return expr
        if isinstance(expr, ast.SetComprehension):
            expr.body = self.fold(expr.body)
            if expr.bound is not None:
                expr.bound = self.fold(expr.bound)
            return expr
        return expr

    def _fold_binop(self, expr: ast.BinOp) -> ast.Expr:
        left_literal = _literal_value(expr.left)
        right_literal = _literal_value(expr.right)
        if left_literal is not None and right_literal is not None:
            from repro.sac.interp import binary_op
            from repro.errors import SacRuntimeError

            try:
                value = binary_op(expr.op, left_literal, right_literal)
            except SacRuntimeError:
                return expr  # e.g. division by zero: leave for runtime
            self.changes += 1
            return _make_literal(value, expr.span)

        # type-preserving identities only (never change array-ness)
        if expr.op in ("+", "-") and _is_zero(right_literal):
            self.changes += 1
            return expr.left
        if expr.op == "+" and _is_zero(left_literal):
            self.changes += 1
            return expr.right
        if expr.op in ("*", "/") and _is_one(right_literal):
            self.changes += 1
            return expr.left
        if expr.op == "*" and _is_one(left_literal):
            self.changes += 1
            return expr.right
        return expr


def _literal_value(expr: ast.Expr):
    if isinstance(expr, ast.IntLit):
        return np.int64(expr.value)
    if isinstance(expr, ast.DoubleLit):
        return np.float64(expr.value)
    if isinstance(expr, ast.BoolLit):
        return np.bool_(expr.value)
    return None


def _is_zero(literal) -> bool:
    return literal is not None and literal.dtype != np.bool_ and literal == 0


def _is_one(literal) -> bool:
    return literal is not None and literal.dtype != np.bool_ and literal == 1


def _make_literal(value, span) -> ast.Expr:
    array = np.asarray(value)
    if array.ndim != 0:
        raise TypeError("constant folding only produces scalars")
    if array.dtype == np.bool_:
        return ast.BoolLit(bool(array), span)
    if np.issubdtype(array.dtype, np.integer):
        return ast.IntLit(int(array), span)
    return ast.DoubleLit(float(array), span)


def fold_constants(module: ast.Module) -> int:
    """Fold constants in every function; returns the number of rewrites."""
    folder = ConstFolder()
    for function in module.functions:
        function.body = folder.fold_block(function.body)
    return folder.changes
