"""Common-subexpression elimination (statement level).

Within a straight-line segment, when two definitions have structurally
identical right-hand sides and none of the free variables involved was
re-bound in between, the later one is replaced by a reference to the
earlier result.  Purity makes this unconditionally sound; it pairs
with inlining, which tends to create duplicated accessor expressions
(``p(qp)`` expanding to the same selection in several places).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sac import ast
from repro.sac.opt import util


def eliminate_common_subexpressions(module: ast.Module) -> int:
    changes = 0
    for function in module.functions:
        changes += _run_block(function.body)
    return changes


def _run_block(statements: List[ast.Stmt]) -> int:
    changes = 0
    for statement in statements:
        if isinstance(statement, ast.If):
            changes += _run_block(statement.then_body)
            changes += _run_block(statement.else_body)
        elif isinstance(statement, (ast.For, ast.While)):
            changes += _run_block(statement.body)

    available: Dict[Tuple, str] = {}
    dependents: Dict[str, List[Tuple]] = {}
    for statement in statements:
        if not isinstance(statement, ast.Assign):
            # control flow: invalidate everything (its bodies may rebind)
            available.clear()
            dependents.clear()
            continue
        key = util.expr_key(statement.expr)
        hit = available.get(key)
        if hit is not None and not isinstance(statement.expr, ast.Var):
            statement.expr = ast.Var(hit, statement.expr.span)
            changes += 1
            key = util.expr_key(statement.expr)
        # re-binding statement.name invalidates keys that mention it
        for stale_key in dependents.pop(statement.name, []):
            available.pop(stale_key, None)
        stale = [k for k, v in available.items() if v == statement.name]
        for k in stale:
            available.pop(k, None)
        if not isinstance(statement.expr, (ast.IntLit, ast.DoubleLit, ast.BoolLit)):
            available[key] = statement.name
            for free in util.free_vars(statement.expr):
                dependents.setdefault(free, []).append(key)
    return changes
