"""Shared utilities for the AST-level optimisation passes.

All SaC expressions are pure (the language is side-effect free — the
property the paper credits for the compiler's freedom to reorganise
code), so passes may freely deduplicate, substitute and delete
expressions as long as data dependencies are respected.  The helpers
here provide structural keys, substitution with capture avoidance for
with-loop index variables, use counting and fresh-name generation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sac import ast

_fresh_counter = itertools.count()


def fresh_name(hint: str = "tmp") -> str:
    """A name no source program can contain (dots are not identifier chars)."""
    return f"_{hint}.{next(_fresh_counter)}"


# --------------------------------------------------------------------------
# structural keys (for CSE and fixpoint detection)
# --------------------------------------------------------------------------


def expr_key(expr: ast.Expr) -> Tuple:
    """Hashable structural key; alpha-insensitive to spans, not to names."""
    if isinstance(expr, ast.IntLit):
        return ("int", expr.value)
    if isinstance(expr, ast.DoubleLit):
        return ("double", expr.value)
    if isinstance(expr, ast.BoolLit):
        return ("bool", expr.value)
    if isinstance(expr, ast.Var):
        return ("var", expr.name)
    if isinstance(expr, ast.ArrayLit):
        return ("array",) + tuple(expr_key(e) for e in expr.elements)
    if isinstance(expr, ast.BinOp):
        return ("bin", expr.op, expr_key(expr.left), expr_key(expr.right))
    if isinstance(expr, ast.UnOp):
        return ("un", expr.op, expr_key(expr.operand))
    if isinstance(expr, ast.Cond):
        return (
            "cond",
            expr_key(expr.condition),
            expr_key(expr.then),
            expr_key(expr.otherwise),
        )
    if isinstance(expr, ast.Call):
        return ("call", expr.module, expr.name) + tuple(expr_key(a) for a in expr.args)
    if isinstance(expr, ast.Index):
        return ("index", expr_key(expr.array)) + tuple(expr_key(i) for i in expr.indices)
    if isinstance(expr, ast.WithLoop):
        generators = tuple(
            (
                tuple(g.index_vars),
                g.vector_var,
                None if g.lower is None else expr_key(g.lower),
                None if g.upper is None else expr_key(g.upper),
                g.lower_inclusive,
                g.upper_inclusive,
                expr_key(g.body),
            )
            for g in expr.generators
        )
        operation = expr.operation
        if isinstance(operation, ast.GenArray):
            op_key = (
                "genarray",
                expr_key(operation.shape),
                None if operation.default is None else expr_key(operation.default),
            )
        elif isinstance(operation, ast.ModArray):
            op_key = ("modarray", expr_key(operation.array))
        else:
            op_key = ("fold", operation.op, expr_key(operation.neutral))
        return ("with", generators, op_key)
    if isinstance(expr, ast.SetComprehension):
        return (
            "set",
            tuple(expr.index_vars),
            expr.vector_var,
            expr_key(expr.body),
            None if expr.bound is None else expr_key(expr.bound),
        )
    raise TypeError(f"unknown expression {type(expr).__name__}")


def stmt_key(statement: ast.Stmt) -> Tuple:
    if isinstance(statement, ast.Assign):
        return ("assign", statement.name, expr_key(statement.expr))
    if isinstance(statement, ast.Return):
        return ("return", expr_key(statement.expr))
    if isinstance(statement, ast.If):
        return (
            "if",
            expr_key(statement.condition),
            tuple(stmt_key(s) for s in statement.then_body),
            tuple(stmt_key(s) for s in statement.else_body),
        )
    if isinstance(statement, ast.For):
        return (
            "for",
            stmt_key(statement.init),
            expr_key(statement.condition),
            stmt_key(statement.update),
            tuple(stmt_key(s) for s in statement.body),
        )
    if isinstance(statement, ast.While):
        return (
            "while",
            expr_key(statement.condition),
            tuple(stmt_key(s) for s in statement.body),
        )
    raise TypeError(f"unknown statement {type(statement).__name__}")


def block_key(statements: Iterable[ast.Stmt]) -> Tuple:
    return tuple(stmt_key(s) for s in statements)


# --------------------------------------------------------------------------
# variable analysis
# --------------------------------------------------------------------------


def bound_vars_of(expr: ast.Expr) -> Set[str]:
    """Index variables bound anywhere inside ``expr``."""
    bound: Set[str] = set()
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.WithLoop):
            for generator in node.generators:
                bound.update(generator.index_vars)
        elif isinstance(node, ast.SetComprehension):
            bound.update(node.index_vars)
    return bound


def free_vars(expr: ast.Expr, bound: Optional[Set[str]] = None) -> Set[str]:
    """Free variables of an expression (respects with-loop binders)."""
    bound = bound or set()
    result: Set[str] = set()

    def visit(node: ast.Expr, bound: Set[str]) -> None:
        if isinstance(node, ast.Var):
            if node.name not in bound:
                result.add(node.name)
            return
        if isinstance(node, ast.WithLoop):
            for generator in node.generators:
                if generator.lower is not None:
                    visit(generator.lower, bound)
                if generator.upper is not None:
                    visit(generator.upper, bound)
                visit(generator.body, bound | set(generator.index_vars))
            operation = node.operation
            if isinstance(operation, ast.GenArray):
                visit(operation.shape, bound)
                if operation.default is not None:
                    visit(operation.default, bound)
            elif isinstance(operation, ast.ModArray):
                visit(operation.array, bound)
            else:
                visit(operation.neutral, bound)
            return
        if isinstance(node, ast.SetComprehension):
            visit(node.body, bound | set(node.index_vars))
            if node.bound is not None:
                visit(node.bound, bound)
            return
        if isinstance(node, ast.ArrayLit):
            children = node.elements
        elif isinstance(node, ast.BinOp):
            children = [node.left, node.right]
        elif isinstance(node, ast.UnOp):
            children = [node.operand]
        elif isinstance(node, ast.Cond):
            children = [node.condition, node.then, node.otherwise]
        elif isinstance(node, ast.Call):
            children = node.args
        elif isinstance(node, ast.Index):
            children = [node.array] + node.indices
        else:
            children = []
        for child in children:
            visit(child, bound)

    visit(expr, set(bound))
    return result


def count_uses(statements: List[ast.Stmt]) -> Dict[str, int]:
    """How many times each variable is *read* in a statement list."""
    counts: Dict[str, int] = {}

    def add_expr(expr: ast.Expr) -> None:
        for name in _read_occurrences(expr):
            counts[name] = counts.get(name, 0) + 1

    def walk(statements: List[ast.Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                add_expr(statement.expr)
            elif isinstance(statement, ast.Return):
                add_expr(statement.expr)
            elif isinstance(statement, ast.If):
                add_expr(statement.condition)
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, ast.For):
                add_expr(statement.init.expr)
                add_expr(statement.condition)
                add_expr(statement.update.expr)
                walk(statement.body)
            elif isinstance(statement, ast.While):
                add_expr(statement.condition)
                walk(statement.body)

    walk(statements)
    return counts


def _read_occurrences(expr: ast.Expr) -> List[str]:
    """Variable read occurrences, counting multiplicity, binder-aware."""
    names: List[str] = []

    def visit(node: ast.Expr, bound: Set[str]) -> None:
        if isinstance(node, ast.Var):
            if node.name not in bound:
                names.append(node.name)
            return
        if isinstance(node, ast.WithLoop):
            for generator in node.generators:
                if generator.lower is not None:
                    visit(generator.lower, bound)
                if generator.upper is not None:
                    visit(generator.upper, bound)
                visit(generator.body, bound | set(generator.index_vars))
            operation = node.operation
            if isinstance(operation, ast.GenArray):
                visit(operation.shape, bound)
                if operation.default is not None:
                    visit(operation.default, bound)
            elif isinstance(operation, ast.ModArray):
                visit(operation.array, bound)
            else:
                visit(operation.neutral, bound)
            return
        if isinstance(node, ast.SetComprehension):
            visit(node.body, bound | set(node.index_vars))
            if node.bound is not None:
                visit(node.bound, bound)
            return
        if isinstance(node, ast.ArrayLit):
            children = node.elements
        elif isinstance(node, ast.BinOp):
            children = [node.left, node.right]
        elif isinstance(node, ast.UnOp):
            children = [node.operand]
        elif isinstance(node, ast.Cond):
            children = [node.condition, node.then, node.otherwise]
        elif isinstance(node, ast.Call):
            children = node.args
        elif isinstance(node, ast.Index):
            children = [node.array] + node.indices
        else:
            children = []
        for child in children:
            visit(child, bound)

    visit(expr, set())
    return names


# --------------------------------------------------------------------------
# substitution / renaming
# --------------------------------------------------------------------------


def substitute(expr: ast.Expr, mapping: Dict[str, ast.Expr]) -> ast.Expr:
    """Replace free variables by expressions, avoiding index-var capture.

    When a with-loop binds an index variable that appears free in a
    replacement, the binder is renamed first.
    """
    if not mapping:
        return expr
    replacement_frees: Set[str] = set()
    for replacement in mapping.values():
        replacement_frees |= free_vars(replacement)

    def visit(node: ast.Expr, mapping: Dict[str, ast.Expr]) -> ast.Expr:
        return _annotated(_visit(node, mapping), node)

    def _visit(node: ast.Expr, mapping: Dict[str, ast.Expr]) -> ast.Expr:
        if isinstance(node, ast.Var):
            if node.name in mapping:
                return copy_expr(mapping[node.name])
            return node
        if isinstance(node, ast.IntLit) or isinstance(node, ast.DoubleLit) or isinstance(node, ast.BoolLit):
            return node
        if isinstance(node, ast.ArrayLit):
            return ast.ArrayLit([visit(e, mapping) for e in node.elements], node.span)
        if isinstance(node, ast.BinOp):
            return ast.BinOp(node.op, visit(node.left, mapping), visit(node.right, mapping), node.span)
        if isinstance(node, ast.UnOp):
            return ast.UnOp(node.op, visit(node.operand, mapping), node.span)
        if isinstance(node, ast.Cond):
            return ast.Cond(
                visit(node.condition, mapping),
                visit(node.then, mapping),
                visit(node.otherwise, mapping),
                node.span,
            )
        if isinstance(node, ast.Call):
            return ast.Call(node.name, [visit(a, mapping) for a in node.args], node.module, node.span)
        if isinstance(node, ast.Index):
            return ast.Index(
                visit(node.array, mapping),
                [visit(i, mapping) for i in node.indices],
                node.span,
            )
        if isinstance(node, ast.WithLoop):
            generators = []
            for generator in node.generators:
                generator = _freshen_generator(generator, replacement_frees)
                inner = {
                    k: v for k, v in mapping.items() if k not in generator.index_vars
                }
                generators.append(
                    ast.Generator(
                        list(generator.index_vars),
                        generator.vector_var,
                        None if generator.lower is None else visit(generator.lower, mapping),
                        None if generator.upper is None else visit(generator.upper, mapping),
                        generator.lower_inclusive,
                        generator.upper_inclusive,
                        visit(generator.body, inner),
                        generator.span,
                    )
                )
            operation = node.operation
            if isinstance(operation, ast.GenArray):
                new_operation: ast.WithOperation = ast.GenArray(
                    visit(operation.shape, mapping),
                    None if operation.default is None else visit(operation.default, mapping),
                    operation.span,
                )
            elif isinstance(operation, ast.ModArray):
                new_operation = ast.ModArray(visit(operation.array, mapping), operation.span)
            else:
                new_operation = ast.Fold(operation.op, visit(operation.neutral, mapping), operation.span)
            return ast.WithLoop(generators, new_operation, node.span)
        if isinstance(node, ast.SetComprehension):
            node2 = _freshen_set(node, replacement_frees)
            inner = {k: v for k, v in mapping.items() if k not in node2.index_vars}
            return ast.SetComprehension(
                list(node2.index_vars),
                node2.vector_var,
                visit(node2.body, inner),
                None if node2.bound is None else visit(node2.bound, mapping),
                node2.span,
            )
        raise TypeError(f"unknown expression {type(node).__name__}")

    return visit(expr, mapping)


def _freshen_generator(generator: ast.Generator, avoid: Set[str]) -> ast.Generator:
    clashes = [name for name in generator.index_vars if name in avoid]
    if not clashes:
        return generator
    renaming = {name: fresh_name(name.strip("_").replace(".", "")) for name in clashes}
    new_names = [renaming.get(name, name) for name in generator.index_vars]
    body = substitute(
        generator.body, {old: ast.Var(new) for old, new in renaming.items()}
    )
    return ast.Generator(
        new_names,
        generator.vector_var,
        generator.lower,
        generator.upper,
        generator.lower_inclusive,
        generator.upper_inclusive,
        body,
        generator.span,
    )


def _freshen_set(node: ast.SetComprehension, avoid: Set[str]) -> ast.SetComprehension:
    clashes = [name for name in node.index_vars if name in avoid]
    if not clashes:
        return node
    renaming = {name: fresh_name(name.strip("_").replace(".", "")) for name in clashes}
    new_names = [renaming.get(name, name) for name in node.index_vars]
    body = substitute(node.body, {old: ast.Var(new) for old, new in renaming.items()})
    return ast.SetComprehension(new_names, node.vector_var, body, node.bound, node.span)


def copy_expr(expr: ast.Expr) -> ast.Expr:
    """Deep structural copy (keeps spans)."""
    return _copy(expr)


def _annotated(new: ast.Expr, old: ast.Expr) -> ast.Expr:
    """Carry checker annotations across a structural copy."""
    sac_type = getattr(old, "sac_type", None)
    if sac_type is not None and getattr(new, "sac_type", None) is None:
        new.sac_type = sac_type  # type: ignore[attr-defined]
    if getattr(old, "reuse_in_place", False):
        new.reuse_in_place = True  # type: ignore[attr-defined]
    return new


def _copy(expr: ast.Expr) -> ast.Expr:
    return _annotated(_copy_raw(expr), expr)


def _copy_raw(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, (ast.IntLit, ast.DoubleLit, ast.BoolLit)):
        return type(expr)(expr.value, expr.span)
    if isinstance(expr, ast.Var):
        return ast.Var(expr.name, expr.span)
    if isinstance(expr, ast.ArrayLit):
        return ast.ArrayLit([_copy(e) for e in expr.elements], expr.span)
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _copy(expr.left), _copy(expr.right), expr.span)
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, _copy(expr.operand), expr.span)
    if isinstance(expr, ast.Cond):
        return ast.Cond(_copy(expr.condition), _copy(expr.then), _copy(expr.otherwise), expr.span)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.name, [_copy(a) for a in expr.args], expr.module, expr.span)
    if isinstance(expr, ast.Index):
        return ast.Index(_copy(expr.array), [_copy(i) for i in expr.indices], expr.span)
    if isinstance(expr, ast.WithLoop):
        generators = [
            ast.Generator(
                list(g.index_vars),
                g.vector_var,
                None if g.lower is None else _copy(g.lower),
                None if g.upper is None else _copy(g.upper),
                g.lower_inclusive,
                g.upper_inclusive,
                _copy(g.body),
                g.span,
            )
            for g in expr.generators
        ]
        operation = expr.operation
        if isinstance(operation, ast.GenArray):
            new_operation: ast.WithOperation = ast.GenArray(
                _copy(operation.shape),
                None if operation.default is None else _copy(operation.default),
                operation.span,
            )
        elif isinstance(operation, ast.ModArray):
            new_operation = ast.ModArray(_copy(operation.array), operation.span)
        else:
            new_operation = ast.Fold(operation.op, _copy(operation.neutral), operation.span)
        return ast.WithLoop(generators, new_operation, expr.span)
    if isinstance(expr, ast.SetComprehension):
        return ast.SetComprehension(
            list(expr.index_vars),
            expr.vector_var,
            _copy(expr.body),
            None if expr.bound is None else _copy(expr.bound),
            expr.span,
        )
    raise TypeError(f"unknown expression {type(expr).__name__}")


def copy_stmt(statement: ast.Stmt) -> ast.Stmt:
    if isinstance(statement, ast.Assign):
        return ast.Assign(statement.name, _copy(statement.expr), statement.span)
    if isinstance(statement, ast.Return):
        return ast.Return(_copy(statement.expr), statement.span)
    if isinstance(statement, ast.If):
        return ast.If(
            _copy(statement.condition),
            [copy_stmt(s) for s in statement.then_body],
            [copy_stmt(s) for s in statement.else_body],
            statement.span,
        )
    if isinstance(statement, ast.For):
        return ast.For(
            copy_stmt(statement.init),
            _copy(statement.condition),
            copy_stmt(statement.update),
            [copy_stmt(s) for s in statement.body],
            statement.span,
        )
    if isinstance(statement, ast.While):
        return ast.While(
            _copy(statement.condition),
            [copy_stmt(s) for s in statement.body],
            statement.span,
        )
    raise TypeError(f"unknown statement {type(statement).__name__}")
