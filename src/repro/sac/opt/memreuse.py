"""Memory-reuse analysis.

SaC's reference-counting runtime updates arrays in place whenever the
consumed array's reference count is one — the paper's Section 2:
"liberates the programmer from implementation concerns, such as the
efficiency of memory access and space management".  The static shadow
of that here: a ``modarray`` with-loop whose source

* is a local definition (never a parameter — the host may still hold
  the buffer),
* was created fresh (with-loop, arithmetic, set notation — not a view
  like ``drop``/``take``/``reshape`` or an alias like a bare variable),
* and is never read again after the modarray,

is annotated ``reuse_in_place = True``.  The NumPy backend then mutates
the buffer instead of copying it, and the cost model skips the copy
traffic.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sac import ast
from repro.sac.opt import util

_FRESH_RHS = (ast.WithLoop, ast.SetComprehension, ast.BinOp, ast.UnOp, ast.ArrayLit)

#: builtins that return freshly allocated arrays (not views / aliases)
_FRESH_BUILTINS = {
    "fabs", "sqrt", "exp", "log", "sin", "cos", "abs", "sign",
    "min", "max", "pow", "genarray", "modarray", "tod",
}


def annotate_memory_reuse(module: ast.Module) -> int:
    changes = 0
    for function in module.functions:
        changes += _annotate_function(function)
    return changes


def _is_fresh(expr: ast.Expr) -> bool:
    if isinstance(expr, _FRESH_RHS):
        return True
    if isinstance(expr, ast.Call) and expr.name in _FRESH_BUILTINS:
        return True
    return False


def _annotate_function(function: ast.Function) -> int:
    changes = 0
    fresh_locals: Set[str] = set()
    statements = function.body

    for position, statement in enumerate(statements):
        if isinstance(statement, ast.Assign):
            if _is_fresh(statement.expr):
                fresh_locals.add(statement.name)
            else:
                fresh_locals.discard(statement.name)
        elif not isinstance(statement, ast.Return):
            # control flow: freshness tracking across it is not attempted
            fresh_locals.clear()
            continue

        expr = statement.expr if isinstance(statement, (ast.Assign, ast.Return)) else None
        if expr is None:
            continue
        loop = expr if isinstance(expr, ast.WithLoop) else None
        if (
            loop is None
            or not isinstance(loop.operation, ast.ModArray)
            or not isinstance(loop.operation.array, ast.Var)
        ):
            continue
        source = loop.operation.array.name
        if source not in fresh_locals:
            continue
        reads_after = 0
        for later in statements[position + 1:]:
            reads_after += _reads_in_stmt(later, source)
        reads_in_this = util._read_occurrences(expr).count(source)
        if reads_after == 0 and reads_in_this == 1:
            if not getattr(loop, "reuse_in_place", False):
                loop.reuse_in_place = True  # type: ignore[attr-defined]
                changes += 1
        # the buffer is consumed either way
        fresh_locals.discard(source)
    return changes


def _reads_in_stmt(statement: ast.Stmt, name: str) -> int:
    count = 0
    if isinstance(statement, (ast.Assign, ast.Return)):
        count += util._read_occurrences(statement.expr).count(name)
    elif isinstance(statement, ast.If):
        count += util._read_occurrences(statement.condition).count(name)
        for inner in statement.then_body + statement.else_body:
            count += _reads_in_stmt(inner, name)
    elif isinstance(statement, ast.For):
        count += util._read_occurrences(statement.init.expr).count(name)
        count += util._read_occurrences(statement.condition).count(name)
        count += util._read_occurrences(statement.update.expr).count(name)
        for inner in statement.body:
            count += _reads_in_stmt(inner, name)
    elif isinstance(statement, ast.While):
        count += util._read_occurrences(statement.condition).count(name)
        for inner in statement.body:
            count += _reads_in_stmt(inner, name)
    return count
