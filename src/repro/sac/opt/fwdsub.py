"""Forward substitution of single-use definitions.

Within a straight-line statement segment, a definition read exactly
once — at a use site *not* under a with-loop binder — is substituted
into its use and removed.  This is the pass that "collates the many
small operations on the arrays into fewer larger operations" (the
paper's Section 5 explanation for SaC's scalability): chains of small
elementwise definitions collapse into one big expression the backend
evaluates as a single parallel region.

Soundness conditions checked per candidate:

* exactly one read in the whole function, located in a *later*
  statement of the same segment;
* no free variable of the definition is reassigned between definition
  and use (bindings are immutable but names can be re-bound);
* the use is not inside a with-loop/set-notation body, a conditional
  branch, or a loop (those would duplicate or repeat the work —
  with-loop folding handles the binder case properly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sac import ast
from repro.sac.opt import util


def forward_substitute(module: ast.Module) -> int:
    changes = 0
    for function in module.functions:
        changes += _run_block(function.body, function)
    return changes


def _run_block(statements: List[ast.Stmt], function: ast.Function) -> int:
    changes = 0
    # recurse into nested blocks first
    for statement in statements:
        if isinstance(statement, ast.If):
            changes += _run_block(statement.then_body, function)
            changes += _run_block(statement.else_body, function)
        elif isinstance(statement, (ast.For, ast.While)):
            changes += _run_block(statement.body, function)

    # split into straight-line segments at control-flow statements
    segment: List[int] = []
    for position, statement in enumerate(statements):
        if isinstance(statement, (ast.Assign, ast.Return)):
            segment.append(position)
        else:
            changes += _run_segment(statements, segment, function)
            segment = []
    changes += _run_segment(statements, segment, function)

    # drop statements marked dead by substitution
    statements[:] = [s for s in statements if not getattr(s, "_dead", False)]
    return changes


def _run_segment(
    statements: List[ast.Stmt], segment: List[int], function: ast.Function
) -> int:
    if len(segment) < 2:
        return 0
    changes = 0
    total_uses = util.count_uses(function.body)
    for producer_position in segment[:-1]:
        producer = statements[producer_position]
        if not isinstance(producer, ast.Assign) or getattr(producer, "_dead", False):
            continue
        name = producer.name
        if total_uses.get(name, 0) != 1:
            continue
        use = _find_single_segment_use(statements, segment, producer_position, name)
        if use is None:
            continue
        consumer_position = use
        # re-binding of any free var of the producer between def and use?
        producer_frees = util.free_vars(producer.expr) | {name}
        blocked = False
        for middle in segment:
            if producer_position < middle < consumer_position:
                middle_statement = statements[middle]
                if (
                    isinstance(middle_statement, ast.Assign)
                    and not getattr(middle_statement, "_dead", False)
                    and middle_statement.name in producer_frees
                ):
                    blocked = True
                    break
        if blocked:
            continue
        consumer = statements[consumer_position]
        replaced = _substitute_unbound(consumer, name, producer.expr)
        if replaced:
            producer._dead = True  # type: ignore[attr-defined]
            changes += 1
            total_uses = util.count_uses(function.body)
    return changes


def _find_single_segment_use(
    statements, segment, producer_position, name
) -> Optional[int]:
    """Position of the unique reader if it is in this segment, else None."""
    found: Optional[int] = None
    for position in segment:
        if position <= producer_position:
            continue
        statement = statements[position]
        if getattr(statement, "_dead", False):
            continue
        expr = statement.expr if isinstance(statement, (ast.Assign, ast.Return)) else None
        if expr is None:
            continue
        reads = util._read_occurrences(expr).count(name)
        if reads:
            if reads > 1 or found is not None:
                return None
            found = position
    return found


def _substitute_unbound(
    statement: ast.Stmt, name: str, replacement: ast.Expr
) -> bool:
    """Replace the single read of ``name`` if it is not under a binder.

    Returns False (and leaves the statement unchanged) when the only
    read sits inside a with-loop/set body or a conditional branch.
    """
    assert isinstance(statement, (ast.Assign, ast.Return))
    done = {"ok": False}

    def visit(node: ast.Expr, shadowed: bool) -> ast.Expr:
        if isinstance(node, ast.Var):
            if node.name == name and not shadowed:
                done["ok"] = True
                return util.copy_expr(replacement)
            return node
        if isinstance(node, ast.ArrayLit):
            node.elements = [visit(e, shadowed) for e in node.elements]
            return node
        if isinstance(node, ast.BinOp):
            node.left = visit(node.left, shadowed)
            node.right = visit(node.right, shadowed)
            return node
        if isinstance(node, ast.UnOp):
            node.operand = visit(node.operand, shadowed)
            return node
        if isinstance(node, ast.Cond):
            node.condition = visit(node.condition, shadowed)
            # branches evaluate conditionally: do not push work into them
            return node
        if isinstance(node, ast.Call):
            node.args = [visit(a, shadowed) for a in node.args]
            return node
        if isinstance(node, ast.Index):
            node.array = visit(node.array, shadowed)
            node.indices = [visit(i, shadowed) for i in node.indices]
            return node
        if isinstance(node, ast.WithLoop):
            for generator in node.generators:
                if generator.lower is not None:
                    generator.lower = visit(generator.lower, shadowed)
                if generator.upper is not None:
                    generator.upper = visit(generator.upper, shadowed)
                # generator bodies: binder context, skip
            operation = node.operation
            if isinstance(operation, ast.GenArray):
                operation.shape = visit(operation.shape, shadowed)
                if operation.default is not None:
                    operation.default = visit(operation.default, shadowed)
            elif isinstance(operation, ast.ModArray):
                operation.array = visit(operation.array, shadowed)
            else:
                operation.neutral = visit(operation.neutral, shadowed)
            return node
        if isinstance(node, ast.SetComprehension):
            if node.bound is not None:
                node.bound = visit(node.bound, shadowed)
            return node
        return node

    statement.expr = visit(statement.expr, False)
    return done["ok"]
