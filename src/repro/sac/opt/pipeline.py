"""The optimisation pipeline.

Mirrors sac2c's driver: an initial inlining phase, then repeated
*optimisation cycles* (constant folding, CSE, forward substitution,
with-loop folding, with-loop unrolling, dead-code elimination) until a
fixpoint or ``max_cycles`` (the paper passes ``-maxoptcyc 100``), and a
final memory-reuse analysis.  A :class:`PipelineReport` records what
each pass did per cycle — benchmarks and tests read it to show, e.g.,
how many with-loops were folded out of the Euler step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sac import ast
from repro.sac.opt.constfold import fold_constants
from repro.sac.opt.cse import eliminate_common_subexpressions
from repro.sac.opt.dce import eliminate_dead_code
from repro.sac.opt.fwdsub import forward_substitute
from repro.sac.opt.inline import inline_functions
from repro.sac.opt.memreuse import annotate_memory_reuse
from repro.sac.opt.wlf import FoldOptions, fold_with_loops
from repro.sac.opt.wlur import unroll_with_loops
from repro.sac.opt.util import block_key


@dataclass
class PipelineOptions:
    """Optimisation switches, named after their sac2c counterparts."""

    optimize: bool = True           # -O3 vs -O0 (master switch)
    max_cycles: int = 100           # -maxoptcyc
    max_unroll: int = 20            # -maxwlur
    inline: bool = True
    constant_folding: bool = True
    cse: bool = True
    forward_substitution: bool = True
    with_loop_folding: bool = True
    with_loop_unrolling: bool = True
    dead_code_elimination: bool = True
    memory_reuse: bool = True
    fold_max_uses: int = 2
    fold_max_body_size: int = 120


@dataclass
class PipelineReport:
    """What the pipeline did: pass name -> total rewrites."""

    cycles_run: int = 0
    inlined_calls: int = 0
    pass_totals: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, count: int) -> None:
        if count:
            self.pass_totals[name] = self.pass_totals.get(name, 0) + count

    @property
    def total_rewrites(self) -> int:
        return self.inlined_calls + sum(self.pass_totals.values())


def optimize_module(
    module: ast.Module, options: Optional[PipelineOptions] = None
) -> PipelineReport:
    """Run the pipeline in place; returns the report."""
    options = options or PipelineOptions()
    report = PipelineReport()
    if not options.optimize:
        return report

    if options.inline:
        report.inlined_calls = inline_functions(module)

    fold_options = FoldOptions(
        max_uses=options.fold_max_uses,
        max_body_size=options.fold_max_body_size,
    )

    previous = _module_key(module)
    for cycle in range(options.max_cycles):
        report.cycles_run = cycle + 1
        if options.constant_folding:
            report.record("constant_folding", fold_constants(module))
        if options.cse:
            report.record("cse", eliminate_common_subexpressions(module))
        if options.forward_substitution:
            report.record("forward_substitution", forward_substitute(module))
        if options.with_loop_folding:
            report.record("with_loop_folding", fold_with_loops(module, fold_options))
        if options.with_loop_unrolling:
            report.record(
                "with_loop_unrolling",
                unroll_with_loops(module, options.max_unroll),
            )
        if options.dead_code_elimination:
            report.record("dead_code_elimination", eliminate_dead_code(module))
        current = _module_key(module)
        if current == previous:
            break
        previous = current

    if options.memory_reuse:
        report.record("memory_reuse", annotate_memory_reuse(module))
    return report


def _module_key(module: ast.Module):
    return tuple(
        (function.name, block_key(function.body)) for function in module.functions
    )
