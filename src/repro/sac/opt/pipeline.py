"""The optimisation pipeline.

Mirrors sac2c's driver: an initial inlining phase, then repeated
*optimisation cycles* (constant folding, CSE, forward substitution,
with-loop folding, with-loop unrolling, dead-code elimination) until a
fixpoint or ``max_cycles`` (the paper passes ``-maxoptcyc 100``), and a
final memory-reuse analysis.  A :class:`PipelineReport` records what
each pass did per cycle — benchmarks and tests read it to show, e.g.,
how many with-loops were folded out of the Euler step.

With ``verify_ir`` on (or ``REPRO_VERIFY_IR=1`` in the environment),
the :mod:`repro.analysis.sac_verify` IR verifier runs after every
pass that changed the module; a pass that emits ill-formed IR raises
:class:`repro.errors.AnalysisError` naming that pass, instead of the
program silently computing garbage later.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sac import ast
from repro.sac.opt.constfold import fold_constants
from repro.sac.opt.cse import eliminate_common_subexpressions
from repro.sac.opt.dce import eliminate_dead_code
from repro.sac.opt.fwdsub import forward_substitute
from repro.sac.opt.inline import inline_functions
from repro.sac.opt.memreuse import annotate_memory_reuse
from repro.sac.opt.wlf import FoldOptions, fold_with_loops
from repro.sac.opt.wlur import unroll_with_loops
from repro.sac.opt.util import block_key


def verify_ir_default() -> bool:
    """``REPRO_VERIFY_IR=1`` turns per-pass verification on globally
    (how CI runs one full-suite pass with the verifier enabled)."""
    return os.environ.get("REPRO_VERIFY_IR", "") not in ("", "0")


@dataclass
class PipelineOptions:
    """Optimisation switches, named after their sac2c counterparts."""

    optimize: bool = True           # -O3 vs -O0 (master switch)
    max_cycles: int = 100           # -maxoptcyc
    max_unroll: int = 20            # -maxwlur
    inline: bool = True
    constant_folding: bool = True
    cse: bool = True
    forward_substitution: bool = True
    with_loop_folding: bool = True
    with_loop_unrolling: bool = True
    dead_code_elimination: bool = True
    memory_reuse: bool = True
    fold_max_uses: int = 2
    fold_max_body_size: int = 120
    verify_ir: bool = field(default_factory=verify_ir_default)
    #: -D defines, needed by the verifier's type re-check
    defines: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("max_cycles", "max_unroll", "fold_max_uses"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(
                    f"PipelineOptions.{name} must be at least 1, got {value} "
                    "(a zero budget would silently disable the pass; use the "
                    "per-pass switches to turn passes off)"
                )


@dataclass
class PipelineReport:
    """What the pipeline did: pass name -> total rewrites."""

    cycles_run: int = 0
    inlined_calls: int = 0
    pass_totals: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, count: int) -> None:
        if count:
            self.pass_totals[name] = self.pass_totals.get(name, 0) + count

    @property
    def total_rewrites(self) -> int:
        return self.inlined_calls + sum(self.pass_totals.values())


def optimize_module(
    module: ast.Module, options: Optional[PipelineOptions] = None
) -> PipelineReport:
    """Run the pipeline in place; returns the report."""
    options = options or PipelineOptions()
    report = PipelineReport()
    if not options.optimize:
        return report

    if options.inline:
        report.inlined_calls = inline_functions(module)
        _verify(module, options, "inline")

    fold_options = FoldOptions(
        max_uses=options.fold_max_uses,
        max_body_size=options.fold_max_body_size,
    )

    previous = _module_key(module)
    for cycle in range(options.max_cycles):
        report.cycles_run = cycle + 1
        if options.constant_folding:
            report.record("constant_folding", fold_constants(module))
            _verify(module, options, "constant_folding")
        if options.cse:
            report.record("cse", eliminate_common_subexpressions(module))
            _verify(module, options, "cse")
        if options.forward_substitution:
            report.record("forward_substitution", forward_substitute(module))
            _verify(module, options, "forward_substitution")
        if options.with_loop_folding:
            report.record("with_loop_folding", fold_with_loops(module, fold_options))
            _verify(module, options, "with_loop_folding")
        if options.with_loop_unrolling:
            report.record(
                "with_loop_unrolling",
                unroll_with_loops(module, options.max_unroll),
            )
            _verify(module, options, "with_loop_unrolling")
        if options.dead_code_elimination:
            report.record("dead_code_elimination", eliminate_dead_code(module))
            _verify(module, options, "dead_code_elimination")
        current = _module_key(module)
        if current == previous:
            break
        previous = current

    if options.memory_reuse:
        report.record("memory_reuse", annotate_memory_reuse(module))
        _verify(module, options, "memory_reuse")
    return report


def _verify(module: ast.Module, options: PipelineOptions, stage: str) -> None:
    """Run the IR verifier after ``stage`` and fail loudly on errors.

    Imported lazily: :mod:`repro.analysis` depends on this package, so
    a module-level import would be circular during package init.
    """
    if not options.verify_ir:
        return
    from repro.analysis.sac_verify import verify_module

    engine = verify_module(module, options.defines, stage=stage)
    engine.raise_if_errors(f"IR verification after pass '{stage}'")


def _module_key(module: ast.Module):
    return tuple(
        (function.name, block_key(function.body)) for function in module.functions
    )
