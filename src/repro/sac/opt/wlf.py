"""With-loop folding (WLF) — SaC's signature optimisation.

When one with-loop (or set-notation expression) produces an array that
later with-loops merely select from, the selection is replaced by the
producer's body with the indices substituted:

    f  = { iv -> flux(q[iv]) };
    dq = { iv -> f[iv + 1] - f[iv] };          // consumer

folds to

    dq = { iv -> flux(q[iv + 1]) - flux(q[iv]) };

eliminating the intermediate array entirely — no allocation, no second
pass over memory, one parallel region instead of two.  The paper's
Section 4.1 points at exactly this ("to materialise each array in
memory would be expensive ... SaC's functional underpinnings allow it
to avoid some unnecessary calculations, memory allocation and memory
copies").

Folding conditions (conservative):

* the producer is a single-generator, full-cover, no-default genarray
  with-loop or a set-notation expression;
* every use of the produced variable in the function is a selection
  ``x[...]`` deep enough to reach the element (so the substituted body
  means the selected value), located after the producer in the same
  straight-line segment with no interfering re-bindings;
* no use site sits under a binder that captures one of the producer
  body's free variables;
* the duplicated body stays within a size budget
  (``max_uses`` x ``max_body_size``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sac import ast
from repro.sac.opt import util


@dataclass
class FoldOptions:
    max_uses: int = 2
    max_body_size: int = 120


@dataclass
class _Producer:
    name: str
    index_vars: List[str]
    vector_var: bool
    frame_rank: Optional[int]  # len(index_vars) for scalar vars
    body: ast.Expr
    free_in_body: Set[str]


def fold_with_loops(module: ast.Module, options: Optional[FoldOptions] = None) -> int:
    options = options or FoldOptions()
    changes = 0
    for function in module.functions:
        changes += _run_block(function.body, function, options)
    return changes


def _run_block(statements: List[ast.Stmt], function, options) -> int:
    changes = 0
    for statement in statements:
        if isinstance(statement, ast.If):
            changes += _run_block(statement.then_body, function, options)
            changes += _run_block(statement.else_body, function, options)
        elif isinstance(statement, (ast.For, ast.While)):
            changes += _run_block(statement.body, function, options)

    segment: List[int] = []
    for position, statement in enumerate(statements):
        if isinstance(statement, (ast.Assign, ast.Return)):
            segment.append(position)
        else:
            changes += _run_segment(statements, segment, function, options)
            segment = []
    changes += _run_segment(statements, segment, function, options)
    return changes


def _expr_size(expr: ast.Expr) -> int:
    return sum(1 for _ in ast.walk_expr(expr))


def _producer_of(statement: ast.Stmt) -> Optional[_Producer]:
    if not isinstance(statement, ast.Assign):
        return None
    expr = statement.expr
    if isinstance(expr, ast.SetComprehension):
        frame_rank = None if expr.vector_var else len(expr.index_vars)
        annotation = getattr(expr, "sac_type", None)
        if expr.vector_var and annotation is not None:
            body_type = getattr(expr.body, "sac_type", None)
            if (
                annotation.ndim is not None
                and body_type is not None
                and body_type.ndim is not None
            ):
                frame_rank = annotation.ndim - body_type.ndim
        return _Producer(
            statement.name,
            list(expr.index_vars),
            expr.vector_var,
            frame_rank,
            expr.body,
            util.free_vars(expr.body, set(expr.index_vars)),
        )
    if isinstance(expr, ast.WithLoop) and isinstance(expr.operation, ast.GenArray):
        if len(expr.generators) != 1 or expr.operation.default is not None:
            return None
        generator = expr.generators[0]
        if not _full_cover(generator, expr.operation.shape):
            return None
        frame_rank = (
            None if generator.vector_var else len(generator.index_vars)
        )
        if generator.vector_var:
            shape_lit = expr.operation.shape
            if isinstance(shape_lit, ast.ArrayLit):
                frame_rank = len(shape_lit.elements)
        return _Producer(
            statement.name,
            list(generator.index_vars),
            generator.vector_var,
            frame_rank,
            generator.body,
            util.free_vars(generator.body, set(generator.index_vars)),
        )
    return None


def _full_cover(generator: ast.Generator, shape: ast.Expr) -> bool:
    lower_ok = generator.lower is None or (
        isinstance(generator.lower, ast.ArrayLit)
        and all(
            isinstance(e, ast.IntLit) and e.value == 0
            for e in generator.lower.elements
        )
        and generator.lower_inclusive
    )
    upper_ok = generator.upper is None or (
        not generator.upper_inclusive
        and util.expr_key(generator.upper) == util.expr_key(shape)
    )
    return lower_ok and upper_ok


def _run_segment(statements, segment, function, options: FoldOptions) -> int:
    if len(segment) < 2:
        return 0
    changes = 0
    for producer_position in list(segment[:-1]):
        producer_statement = statements[producer_position]
        producer = _producer_of(producer_statement)
        if producer is None:
            continue
        if _expr_size(producer.body) > options.max_body_size:
            continue
        uses = _collect_uses(function.body, producer.name)
        if not uses or len(uses) > options.max_uses:
            continue
        # every use must be a foldable selection in this segment, after
        # the producer, with no interfering rebinding
        plan: List[Tuple[ast.Stmt, ast.Index, Tuple[str, ...]]] = []
        feasible = True
        for use in uses:
            statement_of_use, index_node, binders = use
            position = _position_of(statements, segment, statement_of_use)
            if (
                index_node is None
                or position is None
                or position <= producer_position
            ):
                feasible = False
                break
            if producer.free_in_body & set(binders):
                feasible = False
                break
            if _rebinding_between(
                statements, segment, producer_position, position,
                producer.free_in_body | {producer.name},
            ):
                feasible = False
                break
            if not _mappable(index_node, producer):
                feasible = False
                break
            plan.append((statement_of_use, index_node, binders))
        if not feasible:
            continue
        for statement_of_use, index_node, _ in plan:
            _fold_at(statement_of_use, index_node, producer)
            changes += 1
        producer_statement._folded = True  # type: ignore[attr-defined]
    return changes


def _position_of(statements, segment, statement) -> Optional[int]:
    for position in segment:
        if statements[position] is statement:
            return position
    return None


def _rebinding_between(statements, segment, start, stop, names) -> bool:
    for middle in segment:
        if start < middle < stop:
            candidate = statements[middle]
            if isinstance(candidate, ast.Assign) and candidate.name in names:
                return True
    return False


def _collect_uses(block: List[ast.Stmt], name: str):
    """All reads of ``name``: (statement, Index-node-or-None, binders)."""
    uses = []

    def scan_expr(statement, node: ast.Expr, binders: Tuple[str, ...], parent_index):
        if isinstance(node, ast.Var):
            if node.name == name and name not in binders:
                uses.append((statement, parent_index, binders))
            return
        if isinstance(node, ast.Index):
            if isinstance(node.array, ast.Var):
                # the Var directly under an Index: report the Index itself
                if node.array.name == name and name not in binders:
                    uses.append((statement, node, binders))
            else:
                scan_expr(statement, node.array, binders, None)
            for index in node.indices:
                scan_expr(statement, index, binders, None)
            return
        if isinstance(node, ast.WithLoop):
            for generator in node.generators:
                inner = binders + tuple(generator.index_vars)
                if generator.lower is not None:
                    scan_expr(statement, generator.lower, binders, None)
                if generator.upper is not None:
                    scan_expr(statement, generator.upper, binders, None)
                scan_expr(statement, generator.body, inner, None)
            operation = node.operation
            if isinstance(operation, ast.GenArray):
                scan_expr(statement, operation.shape, binders, None)
                if operation.default is not None:
                    scan_expr(statement, operation.default, binders, None)
            elif isinstance(operation, ast.ModArray):
                scan_expr(statement, operation.array, binders, None)
            else:
                scan_expr(statement, operation.neutral, binders, None)
            return
        if isinstance(node, ast.SetComprehension):
            inner = binders + tuple(node.index_vars)
            scan_expr(statement, node.body, inner, None)
            if node.bound is not None:
                scan_expr(statement, node.bound, binders, None)
            return
        for child in _children(node):
            scan_expr(statement, child, binders, None)

    def scan_stmt(statement: ast.Stmt):
        if isinstance(statement, (ast.Assign, ast.Return)):
            scan_expr(statement, statement.expr, (), None)
        elif isinstance(statement, ast.If):
            scan_expr(statement, statement.condition, (), None)
            for inner in statement.then_body + statement.else_body:
                scan_stmt(inner)
        elif isinstance(statement, ast.For):
            scan_expr(statement, statement.init.expr, (), None)
            scan_expr(statement, statement.condition, (), None)
            scan_expr(statement, statement.update.expr, (), None)
            for inner in statement.body:
                scan_stmt(inner)
        elif isinstance(statement, ast.While):
            scan_expr(statement, statement.condition, (), None)
            for inner in statement.body:
                scan_stmt(inner)

    for statement in block:
        scan_stmt(statement)
    return uses


def _children(node: ast.Expr):
    if isinstance(node, ast.ArrayLit):
        return node.elements
    if isinstance(node, ast.BinOp):
        return [node.left, node.right]
    if isinstance(node, ast.UnOp):
        return [node.operand]
    if isinstance(node, ast.Cond):
        return [node.condition, node.then, node.otherwise]
    if isinstance(node, ast.Call):
        return node.args
    return []


def _index_is_scalar(index: ast.Expr) -> bool:
    annotation = getattr(index, "sac_type", None)
    if annotation is not None:
        return annotation.is_scalar
    # unannotated (pass-created) nodes: literals and arithmetic of scalars
    if isinstance(index, ast.IntLit):
        return True
    if isinstance(index, ast.BinOp):
        return _index_is_scalar(index.left) and _index_is_scalar(index.right)
    if isinstance(index, ast.UnOp):
        return _index_is_scalar(index.operand)
    if isinstance(index, ast.Index):
        # iv[0] style: scalar if the inner array is a rank-1 index vector
        return True
    return False


def _mappable(index_node: ast.Index, producer: _Producer) -> bool:
    indices = index_node.indices
    if not producer.vector_var:
        rank = len(producer.index_vars)
        if len(indices) < rank:
            return False
        return all(_index_is_scalar(i) for i in indices[:rank])
    # vector-var producer
    if producer.frame_rank is not None:
        if len(indices) == 1 and not _index_is_scalar(indices[0]):
            return True  # x[iv2]: direct vector mapping
        if len(indices) >= producer.frame_rank and all(
            _index_is_scalar(i) for i in indices[: producer.frame_rank]
        ):
            return True
        return False
    # unknown frame rank: only the direct single-vector form is safe
    return len(indices) == 1 and not _index_is_scalar(indices[0])


def _fold_at(statement, index_node: ast.Index, producer: _Producer) -> None:
    """Rewrite ``x[...]`` in place into the mapped producer body."""
    indices = index_node.indices
    if not producer.vector_var:
        rank = len(producer.index_vars)
        mapping = {
            var: indices[position]
            for position, var in enumerate(producer.index_vars)
        }
        remainder = indices[rank:]
    else:
        var = producer.index_vars[0]
        if len(indices) == 1 and not _index_is_scalar(indices[0]):
            mapping = {var: indices[0]}
            remainder = []
        else:
            rank = producer.frame_rank or len(indices)
            mapping = {var: ast.ArrayLit(list(indices[:rank]), index_node.span)}
            remainder = indices[rank:]
    body = util.substitute(util.copy_expr(producer.body), mapping)
    if remainder:
        body = ast.Index(body, list(remainder), index_node.span)
    # splice: turn the Index node into the body in place
    _become(index_node, body)


def _become(node: ast.Expr, replacement: ast.Expr) -> None:
    """In-place morph of one AST node into another (same object identity)."""
    node.__class__ = replacement.__class__
    node.__dict__.clear()
    node.__dict__.update(replacement.__dict__)
