"""Function inlining.

SaC's ``inline`` keyword is a request the paper's code uses liberally
(both shown functions are ``inline``).  Two forms are handled:

* **expression functions** — a body that is a single ``return``:
  substituted directly at every call site, even inside with-loop
  bodies (pure languages make this always sound);
* **statement functions** — assignments followed by a final return:
  the body is alpha-renamed and spliced in front of the statement
  containing the call, so this form only fires for calls *not* under a
  with-loop binder.

Inlining is what exposes cross-function with-loop chains to the
folding pass — without it the paper's "collate many small operations"
effect cannot happen across abstraction boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sac import ast
from repro.sac.opt import util

_MAX_INLINE_DEPTH = 10


def _is_expression_function(function: ast.Function) -> bool:
    return len(function.body) == 1 and isinstance(function.body[0], ast.Return)


def _is_statement_function(function: ast.Function) -> bool:
    """Assign* Return — no early returns, no control flow with returns."""
    if not function.body or not isinstance(function.body[-1], ast.Return):
        return False
    for statement in function.body[:-1]:
        if not isinstance(statement, (ast.Assign, ast.If, ast.For, ast.While)):
            return False
        if _contains_return(statement):
            return False
    return True


def _contains_return(statement: ast.Stmt) -> bool:
    if isinstance(statement, ast.Return):
        return True
    if isinstance(statement, ast.If):
        return any(_contains_return(s) for s in statement.then_body + statement.else_body)
    if isinstance(statement, (ast.For, ast.While)):
        return any(_contains_return(s) for s in statement.body)
    return False


class Inliner:
    """Inlines ``inline`` functions of one module into each other."""

    def __init__(self, functions: Dict[str, ast.Function]):
        self.functions = functions
        self.changes = 0

    def run(self) -> int:
        for function in self.functions.values():
            function.body = self._inline_block(function.body, depth=0)
        return self.changes

    # -- statement walking ------------------------------------------------

    def _inline_block(self, statements: List[ast.Stmt], depth: int) -> List[ast.Stmt]:
        result: List[ast.Stmt] = []
        for statement in statements:
            result.extend(self._inline_stmt(statement, depth))
        return result

    def _inline_stmt(self, statement: ast.Stmt, depth: int) -> List[ast.Stmt]:
        prelude: List[ast.Stmt] = []
        if isinstance(statement, ast.Assign):
            statement.expr = self._inline_expr(statement.expr, prelude, depth, under_binder=False)
        elif isinstance(statement, ast.Return):
            statement.expr = self._inline_expr(statement.expr, prelude, depth, under_binder=False)
        elif isinstance(statement, ast.If):
            statement.condition = self._inline_expr(
                statement.condition, prelude, depth, under_binder=False
            )
            statement.then_body = self._inline_block(statement.then_body, depth)
            statement.else_body = self._inline_block(statement.else_body, depth)
        elif isinstance(statement, ast.For):
            statement.init.expr = self._inline_expr(
                statement.init.expr, prelude, depth, under_binder=False
            )
            # condition/update re-evaluate per iteration: only expression
            # inlining (no hoisting) is sound there
            statement.condition = self._inline_expr(
                statement.condition, [], depth, under_binder=True
            )
            statement.update.expr = self._inline_expr(
                statement.update.expr, [], depth, under_binder=True
            )
            statement.body = self._inline_block(statement.body, depth)
        elif isinstance(statement, ast.While):
            statement.condition = self._inline_expr(
                statement.condition, [], depth, under_binder=True
            )
            statement.body = self._inline_block(statement.body, depth)
        return prelude + [statement]

    # -- expression walking -----------------------------------------------

    def _inline_expr(
        self,
        expr: ast.Expr,
        prelude: List[ast.Stmt],
        depth: int,
        under_binder: bool,
    ) -> ast.Expr:
        recurse = lambda e, binder=under_binder: self._inline_expr(e, prelude, depth, binder)

        if isinstance(expr, ast.Call) and expr.module is None:
            expr.args = [recurse(a) for a in expr.args]
            target = self.functions.get(expr.name)
            if (
                target is not None
                and target.inline
                and depth < _MAX_INLINE_DEPTH
            ):
                replacement = self._try_inline_call(expr, target, prelude, depth, under_binder)
                if replacement is not None:
                    self.changes += 1
                    return self._inline_expr(replacement, prelude, depth + 1, under_binder)
            return expr
        if isinstance(expr, ast.BinOp):
            expr.left = recurse(expr.left)
            expr.right = recurse(expr.right)
            return expr
        if isinstance(expr, ast.UnOp):
            expr.operand = recurse(expr.operand)
            return expr
        if isinstance(expr, ast.Cond):
            expr.condition = recurse(expr.condition)
            # branches evaluate conditionally: no hoisting out of them
            expr.then = self._inline_expr(expr.then, [], depth, True)
            expr.otherwise = self._inline_expr(expr.otherwise, [], depth, True)
            return expr
        if isinstance(expr, ast.ArrayLit):
            expr.elements = [recurse(e) for e in expr.elements]
            return expr
        if isinstance(expr, ast.Index):
            expr.array = recurse(expr.array)
            expr.indices = [recurse(i) for i in expr.indices]
            return expr
        if isinstance(expr, ast.WithLoop):
            for generator in expr.generators:
                if generator.lower is not None:
                    generator.lower = recurse(generator.lower)
                if generator.upper is not None:
                    generator.upper = recurse(generator.upper)
                generator.body = self._inline_expr(generator.body, [], depth, True)
            operation = expr.operation
            if isinstance(operation, ast.GenArray):
                operation.shape = recurse(operation.shape)
                if operation.default is not None:
                    operation.default = recurse(operation.default)
            elif isinstance(operation, ast.ModArray):
                operation.array = recurse(operation.array)
            else:
                operation.neutral = recurse(operation.neutral)
            return expr
        if isinstance(expr, ast.SetComprehension):
            expr.body = self._inline_expr(expr.body, [], depth, True)
            if expr.bound is not None:
                expr.bound = recurse(expr.bound)
            return expr
        return expr

    def _try_inline_call(
        self,
        call: ast.Call,
        target: ast.Function,
        prelude: List[ast.Stmt],
        depth: int,
        under_binder: bool,
    ) -> Optional[ast.Expr]:
        if len(call.args) != len(target.params):
            return None  # arity errors are the checker's business
        if _is_expression_function(target):
            mapping = {
                param.name: arg for param, arg in zip(target.params, call.args)
            }
            body = target.body[0]
            assert isinstance(body, ast.Return)
            return util.substitute(util.copy_expr(body.expr), mapping)
        if under_binder or not _is_statement_function(target):
            return None
        # statement function: alpha-rename locals, splice assignments
        renaming: Dict[str, str] = {}
        for statement in target.body:
            for name in _assigned_names(statement):
                if name not in renaming:
                    renaming[name] = util.fresh_name(name)
        mapping: Dict[str, ast.Expr] = {
            old: ast.Var(new) for old, new in renaming.items()
        }
        for param, arg in zip(target.params, call.args):
            temp = util.fresh_name(param.name)
            prelude.append(ast.Assign(temp, util.copy_expr(arg), call.span))
            mapping[param.name] = ast.Var(temp)
        for statement in target.body[:-1]:
            prelude.append(_rename_stmt(util.copy_stmt(statement), mapping, renaming))
        final = target.body[-1]
        assert isinstance(final, ast.Return)
        return util.substitute(util.copy_expr(final.expr), mapping)


def _assigned_names(statement: ast.Stmt) -> Set[str]:
    names: Set[str] = set()
    if isinstance(statement, ast.Assign):
        names.add(statement.name)
    elif isinstance(statement, ast.If):
        for inner in statement.then_body + statement.else_body:
            names |= _assigned_names(inner)
    elif isinstance(statement, ast.For):
        names.add(statement.init.name)
        names.add(statement.update.name)
        for inner in statement.body:
            names |= _assigned_names(inner)
    elif isinstance(statement, ast.While):
        for inner in statement.body:
            names |= _assigned_names(inner)
    return names


def _rename_stmt(statement: ast.Stmt, mapping, renaming) -> ast.Stmt:
    if isinstance(statement, ast.Assign):
        return ast.Assign(
            renaming.get(statement.name, statement.name),
            util.substitute(statement.expr, mapping),
            statement.span,
        )
    if isinstance(statement, ast.If):
        return ast.If(
            util.substitute(statement.condition, mapping),
            [_rename_stmt(s, mapping, renaming) for s in statement.then_body],
            [_rename_stmt(s, mapping, renaming) for s in statement.else_body],
            statement.span,
        )
    if isinstance(statement, ast.For):
        init = _rename_stmt(statement.init, mapping, renaming)
        update = _rename_stmt(statement.update, mapping, renaming)
        assert isinstance(init, ast.Assign) and isinstance(update, ast.Assign)
        return ast.For(
            init,
            util.substitute(statement.condition, mapping),
            update,
            [_rename_stmt(s, mapping, renaming) for s in statement.body],
            statement.span,
        )
    if isinstance(statement, ast.While):
        return ast.While(
            util.substitute(statement.condition, mapping),
            [_rename_stmt(s, mapping, renaming) for s in statement.body],
            statement.span,
        )
    if isinstance(statement, ast.Return):
        return ast.Return(util.substitute(statement.expr, mapping), statement.span)
    raise TypeError(f"unknown statement {type(statement).__name__}")


def inline_functions(module: ast.Module) -> int:
    """Run the inliner over a module; returns the number of calls inlined."""
    functions = {f.name: f for f in module.functions}
    return Inliner(functions).run()
