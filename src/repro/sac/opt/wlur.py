"""With-loop unrolling (the ``-maxwlur`` option).

Tiny with-loops — index spaces of at most ``max_unroll`` elements with
statically known bounds — are replaced by explicit array literals (for
genarray) or chained combining expressions (for fold).  The paper's
benchmark invocation passes ``-maxwlur 20``; small vector arithmetic
such as per-axis spacing computations is where this pays off, since a
2-element parallel loop costs far more in scheduling than in work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sac import ast
from repro.sac.opt import util
from repro.sac.interp import _index_space


def unroll_with_loops(module: ast.Module, max_unroll: int = 20) -> int:
    changes = 0
    unroller = _Unroller(max_unroll)
    for function in module.functions:
        function.body = [unroller.visit_stmt(s) for s in function.body]
    return unroller.changes


class _Unroller:
    def __init__(self, max_unroll: int):
        self.max_unroll = max_unroll
        self.changes = 0

    def visit_stmt(self, statement: ast.Stmt) -> ast.Stmt:
        if isinstance(statement, (ast.Assign, ast.Return)):
            statement.expr = self.visit(statement.expr)
        elif isinstance(statement, ast.If):
            statement.condition = self.visit(statement.condition)
            statement.then_body = [self.visit_stmt(s) for s in statement.then_body]
            statement.else_body = [self.visit_stmt(s) for s in statement.else_body]
        elif isinstance(statement, ast.For):
            statement.init.expr = self.visit(statement.init.expr)
            statement.condition = self.visit(statement.condition)
            statement.update.expr = self.visit(statement.update.expr)
            statement.body = [self.visit_stmt(s) for s in statement.body]
        elif isinstance(statement, ast.While):
            statement.condition = self.visit(statement.condition)
            statement.body = [self.visit_stmt(s) for s in statement.body]
        return statement

    def visit(self, expr: ast.Expr) -> ast.Expr:
        # bottom-up
        if isinstance(expr, ast.ArrayLit):
            expr.elements = [self.visit(e) for e in expr.elements]
            return expr
        if isinstance(expr, ast.BinOp):
            expr.left = self.visit(expr.left)
            expr.right = self.visit(expr.right)
            return expr
        if isinstance(expr, ast.UnOp):
            expr.operand = self.visit(expr.operand)
            return expr
        if isinstance(expr, ast.Cond):
            expr.condition = self.visit(expr.condition)
            expr.then = self.visit(expr.then)
            expr.otherwise = self.visit(expr.otherwise)
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self.visit(a) for a in expr.args]
            return expr
        if isinstance(expr, ast.Index):
            expr.array = self.visit(expr.array)
            expr.indices = [self.visit(i) for i in expr.indices]
            return expr
        if isinstance(expr, ast.SetComprehension):
            expr.body = self.visit(expr.body)
            if expr.bound is not None:
                expr.bound = self.visit(expr.bound)
            return expr
        if isinstance(expr, ast.WithLoop):
            for generator in expr.generators:
                if generator.lower is not None:
                    generator.lower = self.visit(generator.lower)
                if generator.upper is not None:
                    generator.upper = self.visit(generator.upper)
                generator.body = self.visit(generator.body)
            operation = expr.operation
            if isinstance(operation, ast.GenArray):
                operation.shape = self.visit(operation.shape)
                if operation.default is not None:
                    operation.default = self.visit(operation.default)
            elif isinstance(operation, ast.ModArray):
                operation.array = self.visit(operation.array)
            else:
                operation.neutral = self.visit(operation.neutral)
            return self._try_unroll(expr)
        return expr

    # ------------------------------------------------------------------

    def _try_unroll(self, expr: ast.WithLoop) -> ast.Expr:
        operation = expr.operation
        if len(expr.generators) != 1:
            return expr
        generator = expr.generators[0]

        if isinstance(operation, ast.GenArray):
            frame = _const_vector(operation.shape)
            if frame is None or len(frame) != 1:
                return expr  # rank-1 unrolling only
            bounds = self._static_bounds(generator, frame)
            if bounds is None:
                return expr
            lower, upper = bounds
            if lower != (0,) or upper != tuple(frame):
                return expr  # partial cover: the default region survives
            if frame[0] > self.max_unroll:
                return expr
            elements = [
                self._body_at(generator, (position,)) for position in range(frame[0])
            ]
            self.changes += 1
            return ast.ArrayLit(elements, expr.span)

        if isinstance(operation, ast.Fold):
            bounds = self._static_bounds(generator, None)
            if bounds is None:
                return expr
            lower, upper = bounds
            total = 1
            for l, u in zip(lower, upper):
                total *= max(0, u - l)
            if total == 0 or total > self.max_unroll:
                return expr
            # left-associated from the neutral element, exactly like the
            # interpreter's fold order (float addition is not associative,
            # and the backends must agree bit-for-bit with the reference)
            combined: ast.Expr = operation.neutral
            for iv in _index_space(lower, upper):
                term = self._body_at(generator, iv)
                combined = _combine(operation.op, combined, term, expr.span)
            self.changes += 1
            return combined

        return expr

    def _static_bounds(self, generator: ast.Generator, frame):
        lower = (
            (0,) * (len(frame) if frame is not None else 0)
            if generator.lower is None
            else _const_vector(generator.lower)
        )
        if generator.lower is not None and lower is not None and not generator.lower_inclusive:
            lower = tuple(b + 1 for b in lower)
        if generator.upper is None:
            upper = tuple(frame) if frame is not None else None
        else:
            upper = _const_vector(generator.upper)
            if upper is not None and generator.upper_inclusive:
                upper = tuple(b + 1 for b in upper)
        if lower is None or upper is None:
            return None
        if generator.lower is None and frame is None:
            lower = (0,) * len(upper)
        if len(lower) != len(upper):
            return None
        if not generator.vector_var and len(generator.index_vars) != len(lower):
            return None
        return tuple(lower), tuple(upper)

    def _body_at(self, generator: ast.Generator, iv) -> ast.Expr:
        if generator.vector_var:
            mapping = {
                generator.index_vars[0]: ast.ArrayLit(
                    [ast.IntLit(int(i)) for i in iv], generator.span
                )
            }
        else:
            mapping = {
                var: ast.IntLit(int(i))
                for var, i in zip(generator.index_vars, iv)
            }
        return util.substitute(util.copy_expr(generator.body), mapping)


def _const_vector(expr: ast.Expr):
    if isinstance(expr, ast.ArrayLit) and all(
        isinstance(e, ast.IntLit) for e in expr.elements
    ):
        return tuple(e.value for e in expr.elements)
    return None


def _combine(op: str, left: ast.Expr, right: ast.Expr, span) -> ast.Expr:
    if op in ("+", "*"):
        return ast.BinOp(op, left, right, span)
    return ast.Call(op, [left, right], None, span)  # max / min builtins
