"""Dead-code elimination.

Removes definitions whose variable is never read anywhere in the
function.  Conservative and repeatable: each round peels the outermost
layer of a dead chain, and the pipeline iterates passes to a fixpoint
anyway.  Purity guarantees deleting a definition cannot change
behaviour (there is nothing to observe but the value).
"""

from __future__ import annotations

from typing import List, Set

from repro.sac import ast
from repro.sac.opt import util


def eliminate_dead_code(module: ast.Module) -> int:
    changes = 0
    for function in module.functions:
        reads = set(util.count_uses(function.body))
        changes += _sweep(function.body, reads)
    return changes


def _sweep(statements: List[ast.Stmt], reads: Set[str]) -> int:
    changes = 0
    kept: List[ast.Stmt] = []
    for statement in statements:
        if isinstance(statement, ast.Assign) and statement.name not in reads:
            changes += 1
            continue
        if isinstance(statement, ast.If):
            changes += _sweep(statement.then_body, reads)
            changes += _sweep(statement.else_body, reads)
            if not statement.then_body and not statement.else_body:
                changes += 1
                continue
        elif isinstance(statement, (ast.For, ast.While)):
            # loop-carried variables are read by the next iteration even if
            # the textual read count outside is zero; only sweep the body
            # of reads that occur nowhere at all
            changes += _sweep(statement.body, reads | _loop_carried(statement))
        kept.append(statement)
    statements[:] = kept
    return changes


def _loop_carried(statement) -> Set[str]:
    """Names assigned in a loop: kept alive across iterations."""
    names: Set[str] = set()

    def collect(statements):
        for inner in statements:
            if isinstance(inner, ast.Assign):
                names.add(inner.name)
            elif isinstance(inner, ast.If):
                collect(inner.then_body)
                collect(inner.else_body)
            elif isinstance(inner, (ast.For, ast.While)):
                collect(inner.body)

    collect(statement.body)
    if isinstance(statement, ast.For):
        names.add(statement.init.name)
        names.add(statement.update.name)
    return names
