"""Source locations and diagnostics for the SaC front end."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A (line, column) position in a source file; 1-based like editors."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


UNKNOWN_SPAN = Span(0, 0)
