"""Text rendering of flow fields — the library's stand-in for the
paper's Figs. 1 and 3 plots.

Everything renders to plain strings so examples and benchmark logs can
show the wave structure without a plotting stack: 1-D profiles as
braille-free ASCII line charts, 2-D scalar fields as shaded character
maps (density maps like Fig. 3's schlieren-style picture).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: light-to-dark shading ramp for 2-D field maps
SHADES = " .:-=+*#%@"


def ascii_profile(
    x: np.ndarray,
    values: np.ndarray,
    height: int = 16,
    width: int = 72,
    label: str = "",
) -> str:
    """Render a 1-D profile (e.g. the Sod tube's density) as ASCII art."""
    x = np.asarray(x, dtype=float)
    values = np.asarray(values, dtype=float)
    if x.shape != values.shape or x.ndim != 1:
        raise ValueError("ascii_profile needs two equal-length 1-D arrays")
    lo = float(values.min())
    hi = float(values.max())
    span = hi - lo if hi > lo else 1.0

    columns = np.linspace(0, len(x) - 1, width).round().astype(int)
    sampled = values[columns]
    rows = np.clip(((sampled - lo) / span * (height - 1)).round().astype(int), 0, height - 1)

    grid = [[" "] * width for _ in range(height)]
    for column, row in enumerate(rows):
        grid[height - 1 - row][column] = "*"
    lines = ["".join(row) for row in grid]
    header = f"{label}  [{lo:.4g} .. {hi:.4g}]" if label else f"[{lo:.4g} .. {hi:.4g}]"
    return "\n".join([header] + lines)


def ascii_field(
    field: np.ndarray,
    width: int = 64,
    height: Optional[int] = None,
    label: str = "",
) -> str:
    """Render a 2-D scalar field (e.g. density) as a shaded character map.

    Index convention matches the solver: ``field[i, j]`` is the cell at
    ``x_i, y_j``; the rendering puts y upward, x rightward (the paper's
    Fig. 2/3 orientation).
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError("ascii_field needs a 2-D array")
    nx, ny = field.shape
    if height is None:
        height = max(1, width * ny // (2 * nx))  # terminal cells are ~2x tall
    xs = np.linspace(0, nx - 1, width).round().astype(int)
    ys = np.linspace(ny - 1, 0, height).round().astype(int)
    lo = float(field.min())
    hi = float(field.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    for j in ys:
        row = field[xs, j]
        shades = np.clip(
            ((row - lo) / span * (len(SHADES) - 1)).round().astype(int),
            0,
            len(SHADES) - 1,
        )
        lines.append("".join(SHADES[s] for s in shades))
    header = f"{label}  [{lo:.4g} .. {hi:.4g}]" if label else f"[{lo:.4g} .. {hi:.4g}]"
    return "\n".join([header] + lines)


def ascii_series(
    series: Sequence[tuple],
    height: int = 14,
    width: int = 60,
    label: str = "",
    log_y: bool = False,
) -> str:
    """Render several (name, xs, ys) series as one ASCII chart
    (used for the Fig. 4 scaling curves)."""
    markers = "ox+#*"
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, _, ys in series])
    if log_y:
        all_y = np.log10(all_y)
    lo, hi = float(all_y.min()), float(all_y.max())
    span = hi - lo if hi > lo else 1.0
    all_x = np.concatenate([np.asarray(xs, dtype=float) for _, xs, _ in series])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    x_span = x_hi - x_lo if x_hi > x_lo else 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_, xs, ys) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            value = np.log10(y) if log_y else y
            column = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - row][column] = marker
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, (name, _, _) in enumerate(series)
    )
    header = f"{label}  ({legend})" if label else f"({legend})"
    scale = " [log10 y]" if log_y else ""
    return "\n".join([header + scale] + ["".join(row) for row in grid])
