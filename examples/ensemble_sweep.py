"""A Mach-number ensemble of the two-channel shock interaction.

One :class:`~repro.euler.solver.EnsembleSolver2D` advances every Mach
variant of the paper's Section 3.2 experiment in lockstep through a
single batched engine — the per-step Python and dispatch overhead is
paid once for the whole sweep, and each member's trajectory is
bit-for-bit the trajectory of running it alone.  After the run, the
per-member leading-shock radii show the expected monotonic trend:
stronger incident shocks expand faster.

A member that blows up mid-sweep is retired with a forensic report
naming its batch index and parameters; the survivors are unaffected.

Run:  python examples/ensemble_sweep.py [n_cells] [steps]
(defaults: 64 cells per side, 60 steps; REPRO_SWEEP_GRID and
REPRO_SWEEP_STEPS override for CI smoke runs.)
"""

import os
import sys

from repro.euler.diagnostics import shock_front_radius
from repro.euler.problems import two_channel_ensemble
from repro.obs.forensics import format_report

MACHS = (1.5, 2.0, 2.5, 3.0)


def main(n_cells: int = 64, steps: int = 60) -> int:
    print(f"Mach sweep {MACHS} on {n_cells}x{n_cells} member grids,")
    print(f"one batched engine, {steps} lockstep steps")
    print("=" * 70)

    ensemble, setups = two_channel_ensemble(MACHS, n_cells=n_cells, h=n_cells / 2.0)
    result = ensemble.run(max_steps=steps)

    for member, setup in zip(result.members, setups):
        if member.failed:
            print(f"  {member.name:<8s} FAILED at step {member.steps}:")
            print(format_report(member.error.forensics))
            continue
        # the channels exhaust from the left/bottom walls; measure the
        # left channel's leading front from its exit centre
        origin = (0.0, 0.5 * (setup.exit_start + setup.exit_stop))
        radius, spread = shock_front_radius(
            ensemble.member_primitive(member.index),
            origin=origin,
            dx=setup.dx,
            p_ambient=setup.p0,
        )
        print(
            f"  {member.name:<8s} t = {member.time:7.3f}  "
            f"shock radius = {radius:6.2f}  (circularity spread {spread:.3f})"
        )

    radii = [
        shock_front_radius(
            ensemble.member_primitive(member.index),
            origin=(0.0, 0.5 * (setup.exit_start + setup.exit_stop)),
            dx=setup.dx,
            p_ambient=setup.p0,
        )[0]
        for member, setup in zip(result.members, setups)
        if not member.failed
    ]
    monotonic = all(a < b for a, b in zip(radii, radii[1:]))
    print()
    print(f"stronger shocks expand faster (radii monotonic in Ms): {monotonic}")
    if result.failed:
        print(f"retired members: {[m.name for m in result.failed]}")
    return 0 if monotonic and not result.failed else 1


if __name__ == "__main__":
    n_cells = int(
        sys.argv[1] if len(sys.argv) > 1 else os.environ.get("REPRO_SWEEP_GRID", 64)
    )
    steps = int(
        sys.argv[2] if len(sys.argv) > 2 else os.environ.get("REPRO_SWEEP_STEPS", 60)
    )
    sys.exit(main(n_cells, steps))
