"""Debugging a blown-up run: step telemetry and failure forensics.

1. watch a healthy Sod run with a :class:`repro.obs.StepTrace` and
   export the per-step telemetry (dt, conservation drift, min
   density/pressure, per-phase seconds) to JSONL;
2. poison one cell's energy mid-run so the next step goes unphysical,
   and show the forensic report the raised
   :class:`~repro.errors.PhysicsError` carries — the offending cells,
   a primitive-variable neighbourhood dump, the last trace records,
   and the active solver configuration;
3. repeat the blow-up on the 4-worker parallel solver and show the
   report naming the *global* cell, not the rank-local one.

Run:  python examples/debug_blowup.py
"""

import tempfile
from pathlib import Path

from repro.errors import PhysicsError
from repro.euler import problems
from repro.obs import StepTrace, format_report, read_jsonl, write_jsonl
from repro.par import ParallelSolver2D


def traced_healthy_run() -> None:
    print("=== 1. a watched run exports per-step telemetry ===")
    solver, _ = problems.sod(n_cells=128)
    trace = StepTrace(capacity=64)
    solver.run(max_steps=20, watch=trace)
    records = trace.records()
    last = records[-1]
    print(f"recorded {len(records)} steps; last: step={last.step}"
          f" dt={last.dt:.3e} mass_drift={last.mass_drift:.2e}"
          f" min_pressure={last.min_pressure:.4f}")
    path = Path(tempfile.gettempdir()) / "sod_trace.jsonl"
    write_jsonl(trace, path)
    assert len(read_jsonl(path)) == len(records)
    print(f"JSONL round trip OK: {path}")


def serial_blowup() -> None:
    print("\n=== 2. a poisoned serial run fails loudly, with forensics ===")
    solver, _ = problems.sod(n_cells=128)
    trace = StepTrace(capacity=64)
    solver.watch = trace
    for _ in range(5):
        solver.step()
    solver.u[70, 2] = -4.0  # negative total energy: unphysical
    try:
        solver.run(max_steps=10)  # max_steps bounds the TOTAL step count
    except PhysicsError as error:
        assert error.forensics is not None
        assert (70,) in error.forensics.cells
        print(format_report(error.forensics))
    else:
        raise SystemExit("poisoned run did not raise")


def parallel_blowup() -> None:
    print("\n=== 3. the parallel solver reports GLOBAL cell indices ===")
    serial, _ = problems.sod_2d(nx=24, ny=24)
    with ParallelSolver2D.from_serial(serial, workers=4) as parallel:
        for _ in range(2):
            parallel.step()
        rank = 3
        subdomain = parallel.decomposition.subdomains[rank]
        parallel._locals[rank][2, 3, -1] = -1.0  # poison one rank's block
        try:
            parallel.run(max_steps=5)
        except PhysicsError as error:
            assert error.details.get("global_cells")
            expected = (subdomain.x0 + 2, subdomain.y0 + 3)
            assert expected in error.cells, (expected, error.cells)
            print(f"rank {error.details['rank']} local cell (2, 3)"
                  f" reported as global {expected}")
            print(format_report(error.forensics))
        else:
            raise SystemExit("poisoned parallel run did not raise")


if __name__ == "__main__":
    traced_healthy_run()
    serial_blowup()
    parallel_blowup()
    print("\nall three demonstrations passed")
