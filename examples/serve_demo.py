"""The simulation service, end to end — also the CI smoke test.

1. start a full service (spawned worker shards + asyncio TCP server)
   in a background thread;
2. submit an *uncached* Sod job and follow its event stream — queued,
   started, per-step trace records, done;
3. resubmit the identical job and show it answered from the result
   cache, bitwise identical to the cold run;
4. submit a job that blows up (CFL = 10) and show the client receives
   the PhysicsError forensic report while the service keeps serving;
5. print the service stats: queue counters, result-cache hit rate and
   the per-shard exact-Riemann star-state memo.

Run:  python examples/serve_demo.py
"""

from repro.serve import JobSpec, ServiceClient
from repro.serve.server import start_in_thread


def main() -> None:
    print("=== 1. starting the service (2 shards) ===")
    handle = start_in_thread(shards=2, star_cache_decimals=12)
    print(f"listening on 127.0.0.1:{handle.port}")

    spec = JobSpec(
        problem="sod",
        problem_args={"n_cells": 96},
        max_steps=12,
        trace_every=3,
    )
    with ServiceClient(port=handle.port) as client:
        assert client.ping()

        print("\n=== 2. an uncached job, streamed ===")
        job_id = client.submit(spec)["job_id"]
        step_events = 0
        for event in client.stream(job_id):
            if event.get("kind") == "step":
                step_events += 1
                print(f"  step {event['step']:3d}  dt={event['dt']:.3e}"
                      f"  min_p={event['min_pressure']:.4f}")
            else:
                print(f"  [{event.get('kind')}] {event.get('event')}")
        assert step_events > 0, "stream produced no step records"
        cold = client.status(job_id)
        assert cold["state"] == "done", cold
        cold_result = client.run(spec)["result"]  # cache hit, same payload

        print("\n=== 3. the identical resubmit is a cache hit ===")
        warm = client.run(spec)
        assert warm["status"]["cached"] is True
        assert warm["result"] == cold_result, "cached payload must be verbatim"
        print(f"  cached={warm['status']['cached']}"
              f"  state_sha256={warm['result']['state_sha256'][:16]}…  (identical)")

        print("\n=== 4. a blow-up returns forensics, the service survives ===")
        unstable = JobSpec.from_dict({
            "problem": "sod",
            "problem_args": {"n_cells": 32},
            "max_steps": 50,
            "config": {"cfl": 10.0},
        })
        failed = client.run(unstable)["status"]
        assert failed["state"] == "failed"
        assert failed["attempts"] == 2, "PhysicsError is retried once"
        forensics = failed["error"]["forensics"]
        assert forensics and forensics["cells"]
        print(f"  failed after {failed['attempts']} attempts;"
              f" first bad cell {forensics['cells'][0]}"
              f" ({failed['error']['message'][:60]}…)")
        assert client.run(spec)["status"]["state"] == "done"  # still serving

        print("\n=== 5. service stats ===")
        stats = client.stats()
        print(f"  jobs: {stats['jobs']}  retries: {stats['retries']}")
        print(f"  queue: enqueued={stats['queue']['enqueued']}"
              f" high_watermark={stats['queue']['high_watermark']}")
        print(f"  result cache: hits={stats['result_cache']['hits']}"
              f" misses={stats['result_cache']['misses']}")
        print(f"  star cache: {stats['star_cache']}")
        client.shutdown()

    handle.stop()
    print("\nservice shut down cleanly")


if __name__ == "__main__":
    main()
