"""The paper's 2-D experiment (Section 3.2 / Figs. 2-3): unsteady
interaction of shock waves exhausting from two perpendicular channels.

Prints the flow-configuration schematic, runs the interaction at
Ms = 2.2, renders the density field, and reports the quantitative
structure diagnostics (circular primary fronts, diagonal symmetry).

Run:  python examples/shock_interaction_2d.py [n_cells]
(defaults to an 80x80 grid; the paper's full scale is 400.)
"""

import sys

from repro.figures import figure2_schematic, figure3_interaction


def main(n_cells: int = 80):
    print("=" * 70)
    print("Fig. 2: flow configuration")
    print("=" * 70)
    print(figure2_schematic())
    print()

    print("=" * 70)
    print(f"Fig. 3: shock interaction at Ms = 2.2 on a {n_cells}x{n_cells} grid")
    print("=" * 70)
    result = figure3_interaction(n_cells=n_cells)
    print(result.render())
    print()
    print("structure checks (the features the paper describes):")
    print(f"  primary front approximately circular: spread = {result.shock_circularity:.3f}")
    print(f"  flow symmetric about the diagonal   : error  = {result.symmetry_error:.2e}")
    print(f"  compression behind the fronts       : rho_max/rho0 = {result.max_density_ratio:.2f}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    main(size)
