"""The two-channel shock interaction on the real parallel runtime.

Runs the Ms = 2.2 problem of the paper's Figs. 2-3 through
``repro.par.ParallelSolver2D`` — block domain decomposition, halo
exchange, a persistent worker team — and prints the measured step rate,
halo traffic, and the bit-for-bit check against the serial golden
reference.  This is the *measured* sibling of the modeled Fig. 4
replay in ``examples/sac_vs_fortran.py``.

Run:  python examples/parallel_interaction.py --workers 4
      python examples/parallel_interaction.py --workers 2 --barrier forkjoin \
          --grid 64 --steps 20 --no-verify
"""

import argparse
import time

import numpy as np

from repro.euler import problems
from repro.euler.solver import SolverConfig
from repro.par import ParallelSolver2D


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="worker count (default 4)")
    parser.add_argument("--grid", type=int, default=48, help="cells per side (default 48)")
    parser.add_argument("--steps", type=int, default=10, help="time steps (default 10)")
    parser.add_argument(
        "--barrier", choices=["spin", "forkjoin"], default="forkjoin",
        help="team synchronisation: SaC-style spinning or OpenMP-style fork/join",
    )
    parser.add_argument("--mach", type=float, default=2.2, help="shock Mach number")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the serial reference run (timing only)",
    )
    args = parser.parse_args()

    config = SolverConfig(reconstruction="pc", riemann="rusanov", rk_order=3, cfl=0.5)
    serial, setup = problems.two_channel(
        n_cells=args.grid, h=args.grid / 2.0, mach=args.mach, config=config
    )

    print(
        f"two-channel interaction, Ms = {args.mach}, {args.grid}x{args.grid} grid,"
        f" {args.steps} steps"
    )
    with ParallelSolver2D.from_serial(
        serial, workers=args.workers, barrier=args.barrier
    ) as parallel:
        decomp = parallel.decomposition
        print(
            f"decomposition: {decomp.px}x{decomp.py} blocks,"
            f" halo width {decomp.halo},"
            f" {decomp.neighbour_pairs()} neighbour links,"
            f" barrier = {args.barrier}"
        )

        start = time.perf_counter()
        parallel.run(max_steps=args.steps)
        elapsed = time.perf_counter() - start
        rate = args.steps / elapsed
        print(
            f"measured: {elapsed:.3f} s for {args.steps} steps"
            f" -> {rate:.2f} steps/s"
            f" ({parallel.halo_exchanges} halo strips exchanged)"
        )

        if not args.no_verify:
            start = time.perf_counter()
            serial.run(max_steps=args.steps)
            serial_elapsed = time.perf_counter() - start
            difference = float(np.abs(parallel.u - serial.u).max())
            print(
                f"serial reference: {serial_elapsed:.3f} s"
                f" -> {args.steps / serial_elapsed:.2f} steps/s"
            )
            print(f"max |parallel - serial| = {difference:.2e}"
                  + ("  (bit-for-bit)" if difference == 0.0 else ""))


if __name__ == "__main__":
    main()
