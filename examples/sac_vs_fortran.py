"""The paper's headline comparison (Section 5 / Fig. 4): SaC vs
auto-parallelised Fortran-90 on the 2-D shock interaction.

Runs both language pipelines on the same workload, cross-checks that
they produce identical physics, shows what each compiler did (with-loop
folding on one side, auto-parallelised loops on the other), and replays
the measured execution traces on the simulated 16-core Opteron to
regenerate the Fig. 4 scaling curves — plus the 2000x2000 variant
described in the paper's text.

Run:  python examples/sac_vs_fortran.py
"""

import numpy as np

from repro.figures import figure4_scaling, render_figure4
from repro.perf.scaling import (
    TwoChannelWorkload,
    measure_fortran_trace,
    measure_sac_trace,
)
from repro.perf.scaling import figure4_experiment
from repro.f90 import compile_file as compile_fortran
from repro.sac import compile_file as compile_sac


def cross_validate():
    print("=" * 70)
    print("same physics from both languages (16x16 grid, 2 steps)")
    print("=" * 70)
    workload = TwoChannelWorkload(measure_grid=16, measure_steps=2)
    q0, dx, e0, e1, qin_left, qin_bottom = workload.host_setup()

    sac = compile_sac("euler2d.sac")
    q_sac = sac.run("simulate", q0, 2, dx, dx, 0.5, e0, e1, qin_left, qin_bottom)

    fortran = compile_fortran("euler2d.f90")
    q_fortran = np.ascontiguousarray(np.moveaxis(q0, -1, 0))
    n = workload.measure_grid
    fortran.call("SIMULATE", q_fortran, n, n, 2, dx, dx, 0.5, e0, e1, qin_left, qin_bottom)

    diff = np.abs(np.moveaxis(q_sac, -1, 0) - q_fortran).max()
    print(f"  max |SaC - Fortran| after 2 steps: {diff:.2e}")
    print(f"  SaC optimiser:   {sac.report.pass_totals}")
    print(f"  F90 autopar:     {len(fortran.autopar_report.parallel_loops)} loops"
          f" parallelised, {len(fortran.autopar_report.serial_loops)} serial")
    for label, reason in fortran.autopar_report.serial_loops.items():
        print(f"    serial {label}: {reason}")
    print()


def scaling_curves():
    workload = TwoChannelWorkload(measure_grid=16, measure_steps=1)
    sac_trace = measure_sac_trace(workload)
    fortran_trace = measure_fortran_trace(workload)
    print("=" * 70)
    print("Fig. 4 (simulated machine): 400x400, 1000 steps")
    print("=" * 70)
    result = figure4_experiment(
        400, 1000, workload=workload, sac_trace=sac_trace, fortran_trace=fortran_trace
    )
    print(render_figure4(result))
    print()
    print("=" * 70)
    print("Section 5 text: the 2000x2000 variant")
    print("=" * 70)
    result_large = figure4_experiment(
        2000, 1000, workload=workload, sac_trace=sac_trace, fortran_trace=fortran_trace
    )
    print(render_figure4(result_large))
    fortran_times = [p.fortran_seconds for p in result_large.points]
    best = fortran_times.index(min(fortran_times)) + 1
    print(f"\nFortran's best core count at 2000x2000: {best}"
          " (the paper: 'after just five cores it started to suffer')")


if __name__ == "__main__":
    cross_validate()
    scaling_curves()
