"""Quickstart: a taste of every layer of the library in under a minute.

1. solve the Sod shock tube with the NumPy reference solver and check
   it against the exact Riemann solution;
2. compile and run a SaC program through the full pipeline (parser ->
   type checker -> optimiser -> vectorising backend);
3. run the paper's Fortran GetDT through the mini-F90 pipeline with
   auto-parallelisation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.euler import exact_riemann_solve, problems
from repro.euler.problems import SOD
from repro.f90 import compile_file as compile_fortran
from repro.sac import CompilerOptions, compile_source
from repro import viz


def euler_quickstart():
    print("=" * 70)
    print("1. NumPy Euler solver: Sod shock tube (paper Fig. 1 workload)")
    print("=" * 70)
    solver, x = problems.sod(n_cells=200)
    solver.run(t_end=0.15)
    density = solver.primitive[:, 0]
    exact = exact_riemann_solve(SOD.left, SOD.right, x, 0.15, SOD.x_diaphragm)
    error = np.abs(density - exact[:, 0]).mean()
    print(viz.ascii_profile(x, density, label=f"density at t=0.15, mean |error| {error:.4f}"))
    print()


def sac_quickstart():
    print("=" * 70)
    print("2. SaC pipeline: compile and run a data-parallel program")
    print("=" * 70)
    source = """
    module quickstart;
    use Math;

    double GAM = 1.4;

    inline double[+] soundSpeed(double[+] p, double[+] rho)
    {
      return( sqrt(GAM * p / rho) );
    }

    double fastestWave(double[.,.] u, double[.,.] p, double[.,.] rho)
    {
      c = soundSpeed(p, rho);
      ev = { [i, j] -> fabs(u[i, j]) + c[i, j] };
      return( maxval(ev) );
    }
    """
    program = compile_source(source, CompilerOptions(trace=True))
    rng = np.random.default_rng(7)
    u = rng.normal(0.0, 1.0, (50, 40))
    p = rng.uniform(0.5, 2.0, (50, 40))
    rho = rng.uniform(0.5, 2.0, (50, 40))
    result = program.run("fastestWave", u, p, rho)
    expected = np.max(np.abs(u) + np.sqrt(1.4 * p / rho))
    print(f"fastestWave = {result:.6f}  (NumPy check: {expected:.6f})")
    print(f"optimiser report: {program.report.pass_totals}")
    print(f"execution trace: {program.trace.summary()}")
    specs = sorted({name for name, _ in program.specializations})
    print(f"specialised functions: {specs}")
    print()


def fortran_quickstart():
    print("=" * 70)
    print("3. mini-F90 pipeline: the paper's GetDT, auto-parallelised")
    print("=" * 70)
    fortran = compile_fortran("getdt.f90")
    print("auto-parallelised loops:", fortran.autopar_report.parallel_loops)
    nx = ny = 32
    rng = np.random.default_rng(3)
    qp = fortran.get("VARS", "QP")
    qp[0, :nx, :ny] = rng.normal(0, 1, (nx, ny))       # Ux
    qp[1, :nx, :ny] = rng.normal(0, 1, (nx, ny))       # Uy
    qp[2, :nx, :ny] = rng.uniform(0.5, 2, (nx, ny))    # Pc
    qp[3, :nx, :ny] = rng.uniform(0.5, 2, (nx, ny))    # Rc
    fortran.set("VARS", "IXMAX", nx)
    fortran.set("VARS", "IYMAX", ny)
    fortran.call("GETDT")
    print(f"GetDT -> DT = {fortran.get('VARS', 'DT'):.6f}")
    print()


if __name__ == "__main__":
    euler_quickstart()
    sac_quickstart()
    fortran_quickstart()
    print("done — see examples/sod_shock_tube.py and")
    print("examples/shock_interaction_2d.py for the paper's experiments.")
