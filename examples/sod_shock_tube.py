"""The paper's 1-D experiment (Section 3.1 / Fig. 1): the Sod shock tube.

Reproduces the three-snapshot picture of the expanding shock wave,
validates every reconstruction scheme against the exact Riemann
solution, and cross-checks the SaC-language Euler solver against the
NumPy reference.

Run:  python examples/sod_shock_tube.py
"""

import numpy as np

from repro.euler import exact_riemann_solve, problems
from repro.euler.diagnostics import exact_wave_speeds, find_jumps_1d
from repro.euler.problems import SOD
from repro.euler.solver import SolverConfig
from repro.figures import figure1_sod
from repro.sac import compile_file


def snapshots():
    print("=" * 70)
    print("Fig. 1: Sod tube density at t = 0.05, 0.10, 0.15 (WENO-3 + RK3)")
    print("=" * 70)
    result = figure1_sod(n_cells=400)
    print(result.render())
    print()


def wave_positions():
    print("=" * 70)
    print("wave positions vs the exact solution at t = 0.15")
    print("=" * 70)
    solver, x = problems.sod(n_cells=400)
    solver.run(t_end=0.15)
    speeds = exact_wave_speeds(SOD.left, SOD.right)
    expected_shock = SOD.x_diaphragm + speeds.shock * 0.15
    expected_contact = SOD.x_diaphragm + speeds.contact * 0.15
    jumps = find_jumps_1d(x, solver.primitive[:, 0])
    print(f"exact shock position   : {expected_shock:.4f}")
    print(f"exact contact position : {expected_contact:.4f}")
    print(f"detected density jumps : {[f'{j:.4f}' for j in jumps]}")
    print()


def scheme_comparison():
    print("=" * 70)
    print("reconstruction menu: L1 density errors at t = 0.2, 200 cells")
    print("=" * 70)
    for name in ("pc", "tvd2", "tvd3", "weno3"):
        config = SolverConfig(reconstruction=name, riemann="hllc", rk_order=3)
        solver, x = problems.sod(n_cells=200, config=config)
        solver.run(t_end=0.2)
        exact = exact_riemann_solve(SOD.left, SOD.right, x, 0.2, SOD.x_diaphragm)
        error = np.abs(solver.primitive[:, 0] - exact[:, 0]).mean()
        print(f"  {name:>6}: mean |rho error| = {error:.5f}")
    print()


def sac_cross_check():
    print("=" * 70)
    print("SaC euler1d.sac vs the NumPy reference (same method)")
    print("=" * 70)
    n = 100
    config = SolverConfig(reconstruction="pc", riemann="rusanov", rk_order=3)
    solver, x = problems.sod(n_cells=n, config=config)
    q0 = solver.u.copy()
    program = compile_file("euler1d.sac")
    q_sac = program.run("simulateTo", q0, 0.1, 1.0 / n, 0.5)
    solver.run(t_end=0.1)
    print(f"  max |difference| after t = 0.1: {np.abs(q_sac - solver.u).max():.2e}")
    print(f"  optimiser: {program.report.pass_totals}")
    print()


if __name__ == "__main__":
    snapshots()
    wave_positions()
    scheme_comparison()
    sac_cross_check()
